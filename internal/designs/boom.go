package designs

import (
	"fmt"

	"repro/internal/firrtl"
)

// BoomParams size the out-of-order core.
type BoomParams struct {
	XLen        int
	FetchWidth  int // decode/issue/writeback width
	RobEntries  int
	IQEntries   int // issue queue (wakeup CAM) entries
	PhysRegs    int
	LSQEntries  int
	BPDEntries  int // branch predictor table
	DCacheLines int
	BrSnapshots int // branch-mask snapshot registers
}

// Boom configuration families, mirroring SmallBoomConfig (1-wide, 32 ROB),
// LargeBoomConfig (3-wide, 96 ROB) and MegaBoomConfig (4-wide, 128 ROB),
// with structure counts scaled to this reproduction's size budget.
func scaledBoom(family string, scale float64) BoomParams {
	s := func(n int) int {
		v := int(float64(n)*scale + 0.5)
		if v < 2 {
			v = 2
		}
		return v
	}
	switch family {
	case "small":
		return BoomParams{XLen: 32, FetchWidth: 1, RobEntries: s(64),
			IQEntries: s(20), PhysRegs: s(64), LSQEntries: s(16),
			BPDEntries: s(64), DCacheLines: s(64), BrSnapshots: s(32)}
	case "large":
		return BoomParams{XLen: 32, FetchWidth: 3, RobEntries: s(128),
			IQEntries: s(28), PhysRegs: s(96), LSQEntries: s(24),
			BPDEntries: s(96), DCacheLines: s(96), BrSnapshots: s(48)}
	case "mega":
		return BoomParams{XLen: 32, FetchWidth: 4, RobEntries: s(160),
			IQEntries: s(36), PhysRegs: s(128), LSQEntries: s(32),
			BPDEntries: s(128), DCacheLines: s(128), BrSnapshots: s(64)}
	}
	panic("designs: unknown BOOM family " + family)
}

// buildBoomCore emits a superscalar out-of-order core: W-wide fetch with a
// branch predictor table, register renaming (map table + free counter), a
// reorder buffer with per-entry state and W-wide completion CAM, an issue
// queue with W-wide wakeup CAM, W ALUs with a full bypass network, a
// physical register file with W write ports, and a load/store queue backed
// by a direct-mapped D$.
func buildBoomCore(b *firrtl.Builder, name string, p BoomParams, seed uint64) *firrtl.ModuleBuilder {
	mb := b.Module(name)
	c := &comp{mb: mb}
	w := p.XLen
	W := p.FetchWidth

	ioIn := mb.Input("io_in", firrtl.UInt(w))
	ioOut := mb.Output("io_out", firrtl.UInt(w))

	// ---------- Fetch: W instruction streams + branch predictor ----------
	pc := mb.Reg("pc", firrtl.UInt(w), 0x8000+seed)
	instrs := make([]firrtl.Expr, W)
	for i := 0; i < W; i++ {
		l := c.lfsr(fmt.Sprintf("f%d_lfsr", i), w, seed+uint64(i)*13+1)
		instrs[i] = mb.Node(fmt.Sprintf("f%d_instr", i), firrtl.Xor(l, ioIn))
	}
	bpd := mb.Mem("bpd_table", firrtl.UInt(2), p.BPDEntries)
	bpdIdxW := log2Up(p.BPDEntries)
	bpdIdx := mb.Node("", firrtl.Trunc(bpdIdxW, firrtl.PadE(bpdIdxW, firrtl.BitsE(pc, bpdIdxW+1, 2))))
	bpdCtr := mb.Node("bpd_ctr", bpd.Read(bpdIdx))
	taken := mb.Node("bpd_taken", firrtl.BitE(bpdCtr, 1))
	// Counter update (saturating-ish).
	ctrUp := mb.Node("", firrtl.Trunc(2, firrtl.Add(bpdCtr, firrtl.U(2, 1))))
	bpd.Write(bpdIdx, ctrUp, firrtl.BitE(instrs[0], 4))
	mb.Connect(pc, firrtl.Mux(taken,
		firrtl.AddW(w, pc, firrtl.PadE(w, firrtl.BitsE(instrs[0], 11, 0))),
		firrtl.AddW(w, pc, firrtl.U(w, uint64(4*W)))))

	// ---------- Rename: map table + allocation counter ----------
	physW := log2Up(p.PhysRegs)
	mapTable := c.regArray("map", 16, physW, seed+0x31)
	allocPtr := mb.Reg("alloc_ptr", firrtl.UInt(physW), 0)
	mb.Connect(allocPtr, firrtl.Trunc(physW, firrtl.Add(allocPtr, firrtl.U(physW, uint64(W)))))
	renamed := make([]firrtl.Expr, W)
	for i := 0; i < W; i++ {
		arch := mb.Node("", firrtl.Trunc(4, firrtl.PadE(4, firrtl.BitsE(instrs[i], 11, 7))))
		renamed[i] = mb.Node(fmt.Sprintf("ren%d", i), c.muxTree(arch, refsToExprs(mapTable)))
	}
	mapIdx := mb.Node("", firrtl.Trunc(4, firrtl.PadE(4, firrtl.BitsE(instrs[0], 19, 15))))
	mapNext := c.writePort(mapTable, mapIdx, allocPtr, firrtl.BitE(instrs[0], 7), holdOf(mapTable))
	connectAll(mb, mapTable, mapNext)

	// ---------- Issue queue: per-entry source tags + W-wide wakeup CAM --
	iqSrc1 := c.regArray("iq_src1", p.IQEntries, physW, seed+0x41)
	iqSrc2 := c.regArray("iq_src2", p.IQEntries, physW, seed+0x42)
	iqReady := c.regArray("iq_rdy", p.IQEntries, 1, 0)
	wbTags := make([]firrtl.Expr, W)
	for i := 0; i < W; i++ {
		wbTags[i] = mb.Node(fmt.Sprintf("wb_tag%d", i),
			firrtl.Trunc(physW, firrtl.Add(allocPtr, firrtl.U(physW, uint64(i)))))
	}
	iqReadyNext := make([]firrtl.Expr, p.IQEntries)
	var grants []firrtl.Expr
	for e := 0; e < p.IQEntries; e++ {
		var wake firrtl.Expr = firrtl.U(1, 0)
		for i := 0; i < W; i++ {
			m1 := mb.Node("", firrtl.Eq(iqSrc1[e], wbTags[i]))
			m2 := mb.Node("", firrtl.Eq(iqSrc2[e], wbTags[i]))
			wake = mb.Node("", firrtl.Or(wake, firrtl.And(m1, m2)))
		}
		iqReadyNext[e] = mb.Node("", firrtl.Or(iqReady[e], firrtl.Trunc(1, wake)))
		grants = append(grants, iqReadyNext[e])
		// Entry tag refill from rename.
		mb.Connect(iqSrc1[e], firrtl.Mux(firrtl.Trunc(1, wake), wbTags[e%W],
			mb.Node("", firrtl.Trunc(physW, firrtl.PadE(physW, renamed[e%W])))))
		mb.Connect(iqSrc2[e], firrtl.Mux(firrtl.BitE(instrs[e%W], 8),
			wbTags[(e+1)%W], iqSrc2[e]))
	}
	connectAll(mb, iqReady, iqReadyNext)
	grantCount := mb.Node("iq_grants", c.popcountTree(grants))

	// ---------- Physical register file: memory macro, 2W read ports ----
	// (FIRRTL register files are Mem constructs with combinational reads,
	// not flop mux trees — this matches the cone structure of the real
	// BOOM, where a read port is one node.)
	prf := mb.Mem("prf", firrtl.UInt(w), p.PhysRegs)
	aluOuts := make([]firrtl.Expr, W)
	readVals := make([]firrtl.Expr, 2*W)
	for i := 0; i < 2*W; i++ {
		sel := mb.Node("", firrtl.Trunc(physW, firrtl.PadE(physW,
			firrtl.BitsE(instrs[i%W], 19+i%3, 12))))
		readVals[i] = mb.Node(fmt.Sprintf("prf_rd%d", i), prf.Read(sel))
	}

	// ---------- Execute: W ALUs + full bypass network ----------
	for i := 0; i < W; i++ {
		a, bb := readVals[2*i], readVals[2*i+1]
		// Bypass from every older ALU in the same group.
		for j := 0; j < i; j++ {
			byp := mb.Node("", firrtl.Eq(wbTags[j], wbTags[i]))
			a = mb.Node("", firrtl.Mux(byp, aluOuts[j], a))
			bb = mb.Node("", firrtl.Mux(byp, aluOuts[j], bb))
		}
		fn := mb.Node("", firrtl.BitsE(instrs[i], 14, 12))
		aluOuts[i] = mb.Node(fmt.Sprintf("alu%d", i), c.alu(a, bb, fn))
	}
	// EX/WB pipeline registers: results are registered before writeback,
	// so the wide-fanout consumers below (PRF ports, ROB, LSQ) anchor
	// their cones at these registers instead of replicating the whole
	// read-tree/ALU complex.
	wbData := make([]firrtl.Expr, W)
	wbTagR := make([]firrtl.Expr, W)
	for i := 0; i < W; i++ {
		dr := mb.Reg(fmt.Sprintf("ex_wb_d%d", i), firrtl.UInt(w), 0)
		mb.Connect(dr, aluOuts[i])
		wbData[i] = dr
		tr := mb.Reg(fmt.Sprintf("ex_wb_t%d", i), firrtl.UInt(physW), 0)
		mb.Connect(tr, wbTags[i])
		wbTagR[i] = tr
	}
	stData := mb.Reg("ex_wb_st", firrtl.UInt(w), 0)
	mb.Connect(stData, readVals[0])

	// W write ports into the PRF.
	for i := 0; i < W; i++ {
		prf.Write(mb.Node("", firrtl.Trunc(physW, firrtl.PadE(physW, wbTagR[i]))),
			wbData[i], firrtl.BitE(instrs[i], 9))
	}

	// ---------- ROB: per-entry valid+data, W-wide completion CAM --------
	robValid := c.regArray("rob_v", p.RobEntries, 1, 0)
	robData := c.regArray("rob_d", p.RobEntries, 16, seed+0x61)
	robW := log2Up(p.RobEntries)
	head := mb.Reg("rob_head", firrtl.UInt(robW), 0)
	tail := mb.Reg("rob_tail", firrtl.UInt(robW), 0)
	mb.Connect(head, firrtl.Trunc(robW, firrtl.Add(head, firrtl.PadE(robW, firrtl.BitE(instrs[0], 2)))))
	mb.Connect(tail, firrtl.Trunc(robW, firrtl.Add(tail, firrtl.U(robW, uint64(W)))))
	var commitBits []firrtl.Expr
	for e := 0; e < p.RobEntries; e++ {
		var done firrtl.Expr = firrtl.U(1, 0)
		for i := 0; i < W; i++ {
			slot := mb.Node("", firrtl.Eq(
				firrtl.Trunc(robW, firrtl.Add(tail, firrtl.U(robW, uint64(i)))),
				firrtl.U(robW, uint64(e))))
			done = mb.Node("", firrtl.Or(done, slot))
		}
		isHead := mb.Node("", firrtl.Eq(head, firrtl.U(robW, uint64(e))))
		vNext := mb.Node("", firrtl.Mux(firrtl.Trunc(1, isHead), firrtl.U(1, 0),
			mb.Node("", firrtl.Or(robValid[e], firrtl.Trunc(1, done)))))
		mb.Connect(robValid[e], firrtl.Trunc(1, vNext))
		mb.Connect(robData[e], firrtl.Mux(firrtl.Trunc(1, done),
			firrtl.Trunc(16, wbData[e%W]), robData[e]))
		commitBits = append(commitBits, robValid[e])
	}
	robOcc := mb.Node("rob_occ", c.popcountTree(commitBits))

	// ---------- Mul/Div unit: a pipelined multiplier and an iterative
	// divider per issue slot. These are few vertices but expensive ones —
	// the op-cost skew the simulation cost model (§4.3) exists to balance.
	mdAcc := make([]firrtl.Expr, W)
	for i := 0; i < W; i++ {
		m := mb.Node("", firrtl.Trunc(w, firrtl.Mul(wbData[i], readVals[2*i])))
		q := m
		for st := 0; st < 4; st++ {
			q = mb.Node("", firrtl.P(firrtl.OpDiv, q,
				mb.Node("", firrtl.Or(readVals[2*i+1], firrtl.U(w, 3)))))
			q = mb.Node("", firrtl.Trunc(w, firrtl.Mul(q, firrtl.U(4, uint64(st+3)))))
		}
		r := mb.Reg(fmt.Sprintf("md_out%d", i), firrtl.UInt(w), 0)
		mb.Connect(r, firrtl.Trunc(w, q))
		mdAcc[i] = r
	}

	// ---------- LSQ + D$ ----------
	lsqAddr := c.regArray("lsq_a", p.LSQEntries, w, seed+0x71)
	for e := 0; e < p.LSQEntries; e++ {
		mb.Connect(lsqAddr[e], firrtl.Mux(firrtl.BitE(instrs[e%W], 10),
			wbData[e%W], lsqAddr[e]))
	}
	_, lsqHit := c.cam(lsqAddr, wbData[0])
	dmem := mb.Mem("dcache_data", firrtl.UInt(w), p.DCacheLines)
	daddrW := log2Up(p.DCacheLines)
	daddr := mb.Node("", firrtl.Trunc(daddrW, firrtl.PadE(daddrW, firrtl.BitsE(wbData[0], daddrW+1, 2))))
	loaded := mb.Node("lsu_load", dmem.Read(daddr))
	dmem.Write(daddr, stData, firrtl.BitE(instrs[0], 11))

	// ---------- ROB exception bits + branch snapshots (register-dense) --
	robExc := c.regArray("rob_e", p.RobEntries, 1, 0)
	for e := range robExc {
		mb.Connect(robExc[e], mb.Node("", firrtl.Xor(robExc[e], firrtl.BitE(instrs[e%W], e%w))))
	}
	excFold := c.xorFold(4, refsToExprs(robExc[:minInt(16, len(robExc))]))
	snap := c.regArray("br_snap", p.BrSnapshots, 4, 0)
	for e := range snap {
		mb.Connect(snap[e], firrtl.Mux(firrtl.BitE(instrs[e%W], (e+3)%w),
			firrtl.BitsE(wbData[e%W], 3, 0), snap[e]))
	}
	snapFold := c.xorFold(4, refsToExprs(snap[:minInt(16, len(snap))]))

	// ---------- Observability ----------
	// Each digest is registered separately so no single output sink owns a
	// giant exclusive cone (an artifact real designs do not have: their
	// outputs are narrow and shallow).
	cycle := mb.Reg("csr_cycle", firrtl.UInt(w), 0)
	mb.Connect(cycle, firrtl.AddW(w, cycle, firrtl.U(w, 1)))
	obs := func(name string, e firrtl.Expr) firrtl.Expr {
		r := mb.Reg(name, firrtl.UInt(w), 0)
		mb.Connect(r, firrtl.Trunc(w, firrtl.PadE(w, e)))
		return r
	}
	occR := obs("obs_occ", robOcc)
	grantR := obs("obs_grant", grantCount)
	excR := obs("obs_exc", excFold)
	snapR := obs("obs_snap", snapFold)
	renR := obs("obs_ren", c.xorFold(w, renamed))
	wbR := obs("obs_wb", c.xorFold(w, wbData))
	mdR := obs("obs_md", c.xorFold(w, mdAcc))
	out := c.xorFold(w, []firrtl.Expr{
		cycle, loaded, occR, grantR, firrtl.PadE(w, lsqHit), wbR, renR,
		pc, excR, snapR, mdR,
	})
	mb.Connect(ioOut, firrtl.Trunc(w, out))
	return mb
}
