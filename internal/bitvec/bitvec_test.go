package bitvec

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := []struct{ w, n int }{{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := WordsFor(c.w); got != c.n {
			t.Errorf("WordsFor(%d) = %d, want %d", c.w, got, c.n)
		}
	}
}

func TestFromUint64Masks(t *testing.T) {
	x := FromUint64(4, 0xff)
	if x.Uint64() != 0xf {
		t.Errorf("width-4 of 0xff = %#x, want 0xf", x.Uint64())
	}
	y := FromUint64(64, ^uint64(0))
	if y.Uint64() != ^uint64(0) {
		t.Errorf("width-64 all-ones lost bits")
	}
}

func TestBigRoundTrip(t *testing.T) {
	v := new(big.Int).Lsh(big.NewInt(0xdeadbeef), 100)
	x := FromBig(200, v)
	if x.Big().Cmp(v) != 0 {
		t.Errorf("round trip: got %v want %v", x.Big(), v)
	}
}

func TestNegativeFromBig(t *testing.T) {
	x := FromBig(8, big.NewInt(-1))
	if x.Uint64() != 0xff {
		t.Errorf("-1 at width 8 = %#x, want 0xff", x.Uint64())
	}
	if x.SignedBig().Int64() != -1 {
		t.Errorf("SignedBig = %v, want -1", x.SignedBig())
	}
}

func TestSignedBig(t *testing.T) {
	x := FromUint64(4, 0x8)
	if got := x.SignedBig().Int64(); got != -8 {
		t.Errorf("signed 4'h8 = %d, want -8", got)
	}
	y := FromUint64(4, 0x7)
	if got := y.SignedBig().Int64(); got != 7 {
		t.Errorf("signed 4'h7 = %d, want 7", got)
	}
}

func TestBitSetBit(t *testing.T) {
	x := New(130)
	x.SetBit(129, 1)
	x.SetBit(0, 1)
	if x.Bit(129) != 1 || x.Bit(0) != 1 || x.Bit(64) != 0 {
		t.Errorf("SetBit/Bit mismatch: %v", x)
	}
	x.SetBit(129, 0)
	if x.Bit(129) != 0 {
		t.Errorf("clearing bit failed")
	}
	// Out-of-range accesses are safe no-ops.
	x.SetBit(500, 1)
	if x.Bit(500) != 0 {
		t.Errorf("out of range bit should read 0")
	}
}

func TestCatBits(t *testing.T) {
	a := FromUint64(8, 0xab)
	b := FromUint64(4, 0xc)
	c := Cat(a, b)
	if c.Width != 12 || c.Uint64() != 0xabc {
		t.Errorf("Cat = %v, want 12'habc", c)
	}
	hi := Bits(c, 11, 4)
	if hi.Width != 8 || hi.Uint64() != 0xab {
		t.Errorf("Bits[11:4] = %v, want 8'hab", hi)
	}
}

func TestShifts(t *testing.T) {
	x := FromUint64(8, 0x81)
	if got := Shl(12, x, 4).Uint64(); got != 0x810 {
		t.Errorf("Shl = %#x, want 0x810", got)
	}
	if got := Shr(8, x, 4).Uint64(); got != 0x8 {
		t.Errorf("Shr = %#x, want 0x8", got)
	}
	if got := Asr(8, x, 4).Uint64(); got != 0xf8 {
		t.Errorf("Asr = %#x, want 0xf8", got)
	}
	// Cross-word shifts.
	w := FromBig(130, new(big.Int).Lsh(big.NewInt(1), 129))
	if got := Shr(130, w, 129); got.Uint64() != 1 {
		t.Errorf("cross-word Shr = %v, want 1", got)
	}
}

func TestReductions(t *testing.T) {
	if AndR(FromUint64(4, 0xf)).Uint64() != 1 {
		t.Errorf("AndR(4'hf) should be 1")
	}
	if AndR(FromUint64(4, 0xe)).Uint64() != 0 {
		t.Errorf("AndR(4'he) should be 0")
	}
	if OrR(New(77)).Uint64() != 0 {
		t.Errorf("OrR(0) should be 0")
	}
	if XorR(FromUint64(8, 0xf0)).Uint64() != 0 {
		t.Errorf("XorR(0xf0) should be 0 (4 set bits)")
	}
	if XorR(FromUint64(8, 0x70)).Uint64() != 1 {
		t.Errorf("XorR(0x70) should be 1 (3 set bits)")
	}
}

func TestDivRemByZero(t *testing.T) {
	x := FromUint64(16, 1234)
	z := New(16)
	if !Div(16, x, z).IsZero() {
		t.Errorf("div by zero should be 0")
	}
	if Rem(16, x, z).Uint64() != 1234 {
		t.Errorf("rem by zero should be x")
	}
}

func TestSignExtend(t *testing.T) {
	x := FromUint64(4, 0x9)
	if got := SignExtend(8, x).Uint64(); got != 0xf9 {
		t.Errorf("SignExtend = %#x, want 0xf9", got)
	}
	y := FromUint64(4, 0x5)
	if got := SignExtend(8, y).Uint64(); got != 0x05 {
		t.Errorf("SignExtend = %#x, want 0x05", got)
	}
}

func TestString(t *testing.T) {
	x := FromUint64(12, 0xabc)
	if got := x.String(); got != "12'habc" {
		t.Errorf("String = %q", got)
	}
	if got := New(8).String(); got != "8'h0" {
		t.Errorf("zero String = %q", got)
	}
}

func TestParseDec(t *testing.T) {
	x, err := ParseDec(8, "255")
	if err != nil || x.Uint64() != 255 {
		t.Errorf("ParseDec(255) = %v, %v", x, err)
	}
	if _, err := ParseDec(8, "zz"); err == nil {
		t.Errorf("ParseDec should reject garbage")
	}
	n, err := ParseDec(8, "-2")
	if err != nil || n.Uint64() != 0xfe {
		t.Errorf("ParseDec(-2) = %v, %v", n, err)
	}
}

// randVec produces a random vector with width in [1, 200].
func randVec(r *rand.Rand) Vec {
	w := 1 + r.Intn(200)
	x := New(w)
	for i := range x.Words {
		x.Words[i] = r.Uint64()
	}
	x.normalize()
	return x
}

func mask(w int) *big.Int {
	return new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(w)), big.NewInt(1))
}

// Property: arithmetic agrees with math/big at every width.
func TestQuickArithAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	f := func(_ uint32) bool {
		x, y := randVec(r), randVec(r)
		w := 1 + r.Intn(220)
		m := mask(w)
		type oneOp struct {
			name string
			got  Vec
			want *big.Int
		}
		ops := []oneOp{
			{"add", Add(w, x, y), new(big.Int).And(new(big.Int).Add(x.Big(), y.Big()), m)},
			{"sub", Sub(w, x, y), new(big.Int).And(new(big.Int).Sub(x.Big(), y.Big()), m)},
			{"mul", Mul(w, x, y), new(big.Int).And(new(big.Int).Mul(x.Big(), y.Big()), m)},
			{"and", And(w, x, y), new(big.Int).And(new(big.Int).And(x.Big(), y.Big()), m)},
			{"or", Or(w, x, y), new(big.Int).And(new(big.Int).Or(x.Big(), y.Big()), m)},
			{"xor", Xor(w, x, y), new(big.Int).And(new(big.Int).Xor(x.Big(), y.Big()), m)},
		}
		for _, op := range ops {
			want := op.want
			if want.Sign() < 0 {
				want = new(big.Int).And(want, m) // already masked, defensive
			}
			if op.got.Big().Cmp(want) != 0 {
				t.Logf("%s: x=%v y=%v w=%d got=%v want=%v", op.name, x, y, w, op.got.Big(), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: shifts agree with math/big.
func TestQuickShiftsAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	f := func(_ uint32) bool {
		x := randVec(r)
		n := r.Intn(2 * x.Width)
		w := 1 + r.Intn(250)
		m := mask(w)
		wantShl := new(big.Int).And(new(big.Int).Lsh(x.Big(), uint(n)), m)
		wantShr := new(big.Int).And(new(big.Int).Rsh(x.Big(), uint(n)), m)
		if Shl(w, x, n).Big().Cmp(wantShl) != 0 {
			return false
		}
		if Shr(w, x, n).Big().Cmp(wantShr) != 0 {
			return false
		}
		// Asr on the signed value.
		sv := x.SignedBig()
		wantAsr := new(big.Int).And(new(big.Int).Rsh(sv, uint(n)), m)
		// Note: big.Rsh on negative does arithmetic shift; mask result.
		gotAsr := Asr(w, x, n)
		if w <= x.Width {
			// Asr semantics defined only up to source width extension; check
			// by comparing the low min(w, x.Width) bits.
			lw := w
			lm := mask(lw)
			if new(big.Int).And(gotAsr.Big(), lm).Cmp(new(big.Int).And(wantAsr, lm)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Cmp is consistent with big.Int comparison, CmpSigned with
// SignedBig comparison.
func TestQuickCompare(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	f := func(_ uint32) bool {
		x, y := randVec(r), randVec(r)
		if Cmp(x, y) != x.Big().Cmp(y.Big()) {
			return false
		}
		if CmpSigned(x, y) != x.SignedBig().Cmp(y.SignedBig()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Cat/Bits round trip.
func TestQuickCatBitsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31415))
	f := func(_ uint32) bool {
		x, y := randVec(r), randVec(r)
		c := Cat(x, y)
		gx := Bits(c, c.Width-1, y.Width)
		gy := Bits(c, y.Width-1, 0)
		return Eq(gx, x) && Eq(gy, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Div/Rem identity x = q*y + r, r < y.
func TestQuickDivRem(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	f := func(_ uint32) bool {
		x, y := randVec(r), randVec(r)
		if y.IsZero() {
			return true
		}
		w := x.Width + 1
		q := Div(w, x, y)
		rem := Rem(w, x, y)
		if Cmp(rem, y) >= 0 {
			return false
		}
		back := Add(w, Mul(w, q, y), rem)
		return back.Big().Cmp(x.Big()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNegNotIdentity(t *testing.T) {
	// -x == ^x + 1 at same width.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		x := randVec(r)
		n := Neg(x.Width, x)
		alt := Add(x.Width, Not(x), FromUint64(x.Width, 1))
		if !Eq(n, alt) {
			t.Fatalf("neg identity failed for %v", x)
		}
	}
}

func BenchmarkAdd256(b *testing.B) {
	x := FromBig(256, new(big.Int).Lsh(big.NewInt(1), 255))
	y := FromUint64(256, 12345)
	dst := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddInto(&dst, x, y)
	}
}

func BenchmarkMul256(b *testing.B) {
	x := FromBig(256, new(big.Int).Lsh(big.NewInt(12345), 100))
	y := FromBig(256, big.NewInt(987654321))
	dst := New(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulInto(&dst, x, y)
	}
}
