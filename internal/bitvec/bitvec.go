// Package bitvec implements fixed-width unsigned bit vectors of arbitrary
// width, stored as little-endian 64-bit words. It is the value substrate for
// signals wider than 64 bits in the RTL simulator: every operation keeps its
// result masked to the vector's declared width, matching two's-complement
// hardware semantics.
package bitvec

import (
	"fmt"
	"math/big"
	"math/bits"
	"strings"
)

// Vec is a fixed-width bit vector. The zero value is a zero-width vector.
// Word 0 holds the least-significant bits. All words beyond Width bits are
// kept zero (the canonical form); every operation restores this invariant.
type Vec struct {
	Width int
	Words []uint64
}

// WordsFor returns the number of 64-bit words needed to hold width bits.
func WordsFor(width int) int {
	if width <= 0 {
		return 0
	}
	return (width + 63) / 64
}

// New returns a zero vector of the given width.
func New(width int) Vec {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return Vec{Width: width, Words: make([]uint64, WordsFor(width))}
}

// FromUint64 returns a vector of the given width holding v (truncated).
func FromUint64(width int, v uint64) Vec {
	x := New(width)
	if len(x.Words) > 0 {
		x.Words[0] = v
	}
	x.normalize()
	return x
}

// FromBig returns a vector of the given width holding v mod 2^width.
// Negative v is interpreted as two's complement within width.
func FromBig(width int, v *big.Int) Vec {
	x := New(width)
	t := new(big.Int).Set(v)
	if t.Sign() < 0 {
		mod := new(big.Int).Lsh(big.NewInt(1), uint(width))
		t.Mod(t, mod)
		if t.Sign() < 0 {
			t.Add(t, mod)
		}
	}
	ws := t.Bits()
	for i := 0; i < len(ws) && i < len(x.Words); i++ {
		x.Words[i] = uint64(ws[i])
	}
	x.normalize()
	return x
}

// Big returns the unsigned value as a big.Int.
func (x Vec) Big() *big.Int {
	r := new(big.Int)
	for i := len(x.Words) - 1; i >= 0; i-- {
		r.Lsh(r, 64)
		r.Or(r, new(big.Int).SetUint64(x.Words[i]))
	}
	return r
}

// SignedBig returns the value interpreted as a two's-complement signed
// integer of x.Width bits.
func (x Vec) SignedBig() *big.Int {
	r := x.Big()
	if x.Width > 0 && x.Bit(x.Width-1) == 1 {
		mod := new(big.Int).Lsh(big.NewInt(1), uint(x.Width))
		r.Sub(r, mod)
	}
	return r
}

// Uint64 returns the low 64 bits of x.
func (x Vec) Uint64() uint64 {
	if len(x.Words) == 0 {
		return 0
	}
	return x.Words[0]
}

// Clone returns a deep copy of x.
func (x Vec) Clone() Vec {
	y := Vec{Width: x.Width, Words: make([]uint64, len(x.Words))}
	copy(y.Words, x.Words)
	return y
}

// normalize masks off any bits above Width.
func (x *Vec) normalize() {
	n := WordsFor(x.Width)
	for i := n; i < len(x.Words); i++ {
		x.Words[i] = 0
	}
	if n > 0 {
		rem := uint(x.Width & 63)
		if rem != 0 {
			x.Words[n-1] &= (1 << rem) - 1
		}
	}
}

// Bit returns bit i of x (0 if out of range).
func (x Vec) Bit(i int) uint {
	if i < 0 || i >= x.Width {
		return 0
	}
	return uint(x.Words[i/64]>>(uint(i)&63)) & 1
}

// SetBit sets bit i of x to b (no-op if out of range).
func (x *Vec) SetBit(i int, b uint) {
	if i < 0 || i >= x.Width {
		return
	}
	if b&1 == 1 {
		x.Words[i/64] |= 1 << (uint(i) & 63)
	} else {
		x.Words[i/64] &^= 1 << (uint(i) & 63)
	}
}

// IsZero reports whether x is zero.
func (x Vec) IsZero() bool {
	for _, w := range x.Words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Eq reports whether x and y hold the same value (widths may differ; the
// comparison is on unsigned values).
func Eq(x, y Vec) bool {
	n := len(x.Words)
	if len(y.Words) > n {
		n = len(y.Words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Cmp compares x and y as unsigned values: -1 if x<y, 0 if equal, 1 if x>y.
func Cmp(x, y Vec) int {
	n := len(x.Words)
	if len(y.Words) > n {
		n = len(y.Words)
	}
	for i := n - 1; i >= 0; i-- {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// CmpSigned compares x and y as signed values of their respective widths.
func CmpSigned(x, y Vec) int {
	sx := x.Width > 0 && x.Bit(x.Width-1) == 1
	sy := y.Width > 0 && y.Bit(y.Width-1) == 1
	if sx != sy {
		if sx {
			return -1
		}
		return 1
	}
	if !sx {
		return Cmp(x, y)
	}
	return x.SignedBig().Cmp(y.SignedBig())
}

// AddInto computes dst = (x + y) mod 2^dst.Width. dst must be pre-sized.
func AddInto(dst *Vec, x, y Vec) {
	var carry uint64
	for i := range dst.Words {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		s, c1 := bits.Add64(a, b, carry)
		dst.Words[i] = s
		carry = c1
	}
	dst.normalize()
}

// Add returns x+y at the given result width.
func Add(width int, x, y Vec) Vec {
	r := New(width)
	AddInto(&r, x, y)
	return r
}

// SubInto computes dst = (x - y) mod 2^dst.Width.
func SubInto(dst *Vec, x, y Vec) {
	var borrow uint64
	for i := range dst.Words {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		s, c1 := bits.Sub64(a, b, borrow)
		dst.Words[i] = s
		borrow = c1
	}
	dst.normalize()
}

// Sub returns x-y (two's complement) at the given result width.
func Sub(width int, x, y Vec) Vec {
	r := New(width)
	SubInto(&r, x, y)
	return r
}

// MulInto computes dst = (x*y) mod 2^dst.Width using schoolbook multiply.
func MulInto(dst *Vec, x, y Vec) {
	n := len(dst.Words)
	tmp := make([]uint64, n)
	for i := 0; i < len(x.Words) && i < n; i++ {
		a := x.Words[i]
		if a == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < n; j++ {
			var b uint64
			if j < len(y.Words) {
				b = y.Words[j]
			}
			hi, lo := bits.Mul64(a, b)
			lo, c := bits.Add64(lo, tmp[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			tmp[i+j] = lo
			carry = hi
		}
	}
	copy(dst.Words, tmp)
	dst.normalize()
}

// Mul returns x*y at the given result width.
func Mul(width int, x, y Vec) Vec {
	r := New(width)
	MulInto(&r, x, y)
	return r
}

// Div returns the unsigned quotient x/y at the given width; division by
// zero yields zero (hardware convention used by this simulator).
func Div(width int, x, y Vec) Vec {
	if y.IsZero() {
		return New(width)
	}
	q := new(big.Int).Quo(x.Big(), y.Big())
	return FromBig(width, q)
}

// Rem returns the unsigned remainder x%y at the given width; y==0 yields x.
func Rem(width int, x, y Vec) Vec {
	if y.IsZero() {
		return FromBig(width, x.Big())
	}
	m := new(big.Int).Rem(x.Big(), y.Big())
	return FromBig(width, m)
}

// And returns x&y at the given width.
func And(width int, x, y Vec) Vec {
	r := New(width)
	for i := range r.Words {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		r.Words[i] = a & b
	}
	r.normalize()
	return r
}

// Or returns x|y at the given width.
func Or(width int, x, y Vec) Vec {
	r := New(width)
	for i := range r.Words {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		r.Words[i] = a | b
	}
	r.normalize()
	return r
}

// Xor returns x^y at the given width.
func Xor(width int, x, y Vec) Vec {
	r := New(width)
	for i := range r.Words {
		var a, b uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		if i < len(y.Words) {
			b = y.Words[i]
		}
		r.Words[i] = a ^ b
	}
	r.normalize()
	return r
}

// Not returns ^x at x's width.
func Not(x Vec) Vec {
	r := New(x.Width)
	for i := range r.Words {
		var a uint64
		if i < len(x.Words) {
			a = x.Words[i]
		}
		r.Words[i] = ^a
	}
	r.normalize()
	return r
}

// Neg returns -x (two's complement) at x's width.
func Neg(width int, x Vec) Vec {
	return Sub(width, New(width), x)
}

// Shl returns x << n at the given result width.
func Shl(width int, x Vec, n int) Vec {
	r := New(width)
	if n < 0 {
		panic("bitvec: negative shift")
	}
	wordShift := n / 64
	bitShift := uint(n % 64)
	for i := len(r.Words) - 1; i >= 0; i-- {
		var v uint64
		src := i - wordShift
		if src >= 0 && src < len(x.Words) {
			v = x.Words[src] << bitShift
		}
		if bitShift > 0 && src-1 >= 0 && src-1 < len(x.Words) {
			v |= x.Words[src-1] >> (64 - bitShift)
		}
		r.Words[i] = v
	}
	r.normalize()
	return r
}

// Shr returns x >> n (logical) at the given result width.
func Shr(width int, x Vec, n int) Vec {
	r := New(width)
	if n < 0 {
		panic("bitvec: negative shift")
	}
	wordShift := n / 64
	bitShift := uint(n % 64)
	for i := range r.Words {
		var v uint64
		src := i + wordShift
		if src < len(x.Words) {
			v = x.Words[src] >> bitShift
		}
		if bitShift > 0 && src+1 < len(x.Words) {
			v |= x.Words[src+1] << (64 - bitShift)
		}
		r.Words[i] = v
	}
	r.normalize()
	return r
}

// Asr returns x >> n arithmetically (sign bit of x's width replicated),
// at the given result width.
func Asr(width int, x Vec, n int) Vec {
	r := Shr(width, x, n)
	if x.Width > 0 && x.Bit(x.Width-1) == 1 {
		// Fill bits [x.Width-n, width) with ones.
		lo := x.Width - n
		if lo < 0 {
			lo = 0
		}
		for i := lo; i < width; i++ {
			r.SetBit(i, 1)
		}
	}
	return r
}

// Bits returns x[hi:lo] inclusive, as a vector of width hi-lo+1.
func Bits(x Vec, hi, lo int) Vec {
	if hi < lo || lo < 0 {
		panic(fmt.Sprintf("bitvec: bad bit range [%d:%d]", hi, lo))
	}
	return Shr(hi-lo+1, x, lo)
}

// Cat returns {x, y}: x in the high bits, y in the low bits.
func Cat(x, y Vec) Vec {
	w := x.Width + y.Width
	r := Shl(w, x, y.Width)
	ry := New(w)
	copy(ry.Words, y.Words)
	ry.normalize()
	return Or(w, r, ry)
}

// SignExtend returns x sign-extended from x.Width to width.
func SignExtend(width int, x Vec) Vec {
	r := New(width)
	copy(r.Words, x.Words)
	if width > x.Width && x.Width > 0 && x.Bit(x.Width-1) == 1 {
		for i := x.Width; i < width; i++ {
			r.SetBit(i, 1)
		}
	}
	r.normalize()
	return r
}

// ZeroExtend returns x zero-extended (or truncated) to width.
func ZeroExtend(width int, x Vec) Vec {
	r := New(width)
	copy(r.Words, x.Words)
	r.normalize()
	return r
}

// AndR returns the 1-bit AND-reduction of x.
func AndR(x Vec) Vec {
	r := New(1)
	if x.Width == 0 {
		r.Words = []uint64{1}
		return r
	}
	all := true
	for i := 0; i < x.Width; i++ {
		if x.Bit(i) == 0 {
			all = false
			break
		}
	}
	if all {
		r.Words[0] = 1
	}
	return r
}

// OrR returns the 1-bit OR-reduction of x.
func OrR(x Vec) Vec {
	r := New(1)
	if !x.IsZero() {
		r.Words[0] = 1
	}
	return r
}

// XorR returns the 1-bit XOR-reduction of x.
func XorR(x Vec) Vec {
	var pop int
	for _, w := range x.Words {
		pop += bits.OnesCount64(w)
	}
	r := New(1)
	r.Words[0] = uint64(pop & 1)
	return r
}

// PopCount returns the number of set bits in x.
func PopCount(x Vec) int {
	var pop int
	for _, w := range x.Words {
		pop += bits.OnesCount64(w)
	}
	return pop
}

// String renders x as width'hHEX.
func (x Vec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'h", x.Width)
	started := false
	for i := len(x.Words) - 1; i >= 0; i-- {
		if !started {
			if x.Words[i] == 0 && i > 0 {
				continue
			}
			fmt.Fprintf(&sb, "%x", x.Words[i])
			started = true
		} else {
			fmt.Fprintf(&sb, "%016x", x.Words[i])
		}
	}
	if !started {
		sb.WriteString("0")
	}
	return sb.String()
}

// ParseDec parses a decimal (possibly negative) literal into a vector of
// the given width.
func ParseDec(width int, s string) (Vec, error) {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return Vec{}, fmt.Errorf("bitvec: bad decimal literal %q", s)
	}
	return FromBig(width, v), nil
}
