package bitvec

import (
	"math/big"
	"math/rand"
	"testing"
)

// boundaryWidths are the widths where the packed-word representation
// changes shape: single-word (1, 63, 64), the word-boundary crossings
// (65), and the two-word edges (127, 128). Bugs in masking, carries, or
// sign handling cluster exactly here.
var boundaryWidths = []int{1, 63, 64, 65, 127, 128}

// bdVec draws a random value of the given width with a bias toward the
// all-ones / high-bit-set patterns that stress carries and sign
// extension. (randVec in bitvec_test.go picks its own width; boundary
// tests need to pin it.)
func bdVec(r *rand.Rand, width int) Vec {
	v := New(width)
	switch r.Intn(4) {
	case 0: // all ones
		for i := range v.Words {
			v.Words[i] = ^uint64(0)
		}
	case 1: // high bit only
		v.SetBit(width-1, 1)
		return v
	default:
		for i := range v.Words {
			v.Words[i] = r.Uint64()
		}
	}
	v.normalize()
	return v
}

func checkBig(t *testing.T, op string, width int, got Vec, want *big.Int) {
	t.Helper()
	want = new(big.Int).And(want, mask(width))
	if got.Big().Cmp(want) != 0 {
		t.Fatalf("%s width %d: got %v want %v", op, width, got.Big(), want)
	}
}

// TestShiftBoundaries cross-checks Shl/Shr/Asr against math/big at every
// boundary width, with shift amounts that land on, just inside, and past
// each word edge (including n >= width, which must saturate).
func TestShiftBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, w := range boundaryWidths {
		shifts := []int{0, 1, w / 2, w - 1, w, w + 1, 2 * w}
		if w > 64 {
			shifts = append(shifts, 63, 64, 65)
		}
		for trial := 0; trial < 50; trial++ {
			x := bdVec(r, w)
			xb := x.Big()
			xs := x.SignedBig()
			for _, n := range shifts {
				checkBig(t, "Shl", w, Shl(w, x, n), new(big.Int).Lsh(xb, uint(n)))
				checkBig(t, "Shr", w, Shr(w, x, n), new(big.Int).Rsh(xb, uint(n)))
				// Arithmetic shift: big.Int Rsh on the signed value is
				// already an arithmetic shift (floor division by 2^n).
				checkBig(t, "Asr", w, Asr(w, x, n), new(big.Int).Rsh(xs, uint(n)))
			}
		}
	}
}

// TestCompareBoundaries cross-checks unsigned and signed comparison
// against math/big, including the equal case and the sign-flip pairs
// (min-negative vs max-positive) that a two's-complement compare can get
// backwards at word boundaries.
func TestCompareBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, w := range boundaryWidths {
		minNeg := New(w)
		minNeg.SetBit(w-1, 1) // 100...0: most negative signed value
		maxPos := Not(minNeg) // 011...1: most positive signed value
		pairs := [][2]Vec{
			{minNeg, maxPos},
			{maxPos, minNeg},
			{minNeg, minNeg},
			{New(w), maxPos},
		}
		for trial := 0; trial < 50; trial++ {
			pairs = append(pairs, [2]Vec{bdVec(r, w), bdVec(r, w)})
		}
		for _, p := range pairs {
			x, y := p[0], p[1]
			if got, want := Cmp(x, y), x.Big().Cmp(y.Big()); got != want {
				t.Fatalf("Cmp width %d: %v vs %v: got %d want %d", w, x.Big(), y.Big(), got, want)
			}
			if got, want := CmpSigned(x, y), x.SignedBig().Cmp(y.SignedBig()); got != want {
				t.Fatalf("CmpSigned width %d: %v vs %v: got %d want %d", w, x.SignedBig(), y.SignedBig(), got, want)
			}
			if got, want := Eq(x, y), x.Big().Cmp(y.Big()) == 0; got != want {
				t.Fatalf("Eq width %d: %v vs %v: got %v", w, x.Big(), y.Big(), got)
			}
		}
	}
}

// TestSignExtendBoundaries cross-checks SignExtend (and ZeroExtend) when
// the source or destination width sits on a word boundary — the sign bit
// of a 64- or 128-bit value lives in the top bit of a word, where an
// off-by-one in the fill mask silently zero-extends instead.
func TestSignExtendBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, from := range boundaryWidths {
		for _, to := range boundaryWidths {
			if to < from {
				continue
			}
			for trial := 0; trial < 30; trial++ {
				x := bdVec(r, from)
				se := SignExtend(to, x)
				if se.Width != to {
					t.Fatalf("SignExtend(%d<-%d).Width = %d", to, from, se.Width)
				}
				checkBig(t, "SignExtend", to, se, x.SignedBig())
				if se.SignedBig().Cmp(x.SignedBig()) != 0 {
					t.Fatalf("SignExtend %d->%d: value changed: %v -> %v",
						from, to, x.SignedBig(), se.SignedBig())
				}
				ze := ZeroExtend(to, x)
				checkBig(t, "ZeroExtend", to, ze, x.Big())
			}
		}
	}
}

// TestArithBoundaries cross-checks add/sub/mul/div/rem modular arithmetic
// against math/big at the boundary widths.
func TestArithBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, w := range boundaryWidths {
		for trial := 0; trial < 50; trial++ {
			x, y := bdVec(r, w), bdVec(r, w)
			xb, yb := x.Big(), y.Big()
			checkBig(t, "Add", w, Add(w, x, y), new(big.Int).Add(xb, yb))
			checkBig(t, "Sub", w, Sub(w, x, y), new(big.Int).Sub(xb, yb))
			checkBig(t, "Mul", w, Mul(w, x, y), new(big.Int).Mul(xb, yb))
			checkBig(t, "Neg", w, Neg(w, x), new(big.Int).Neg(xb))
			if !y.IsZero() {
				checkBig(t, "Div", w, Div(w, x, y), new(big.Int).Div(xb, yb))
				checkBig(t, "Rem", w, Rem(w, x, y), new(big.Int).Rem(xb, yb))
			}
		}
	}
}

// FuzzBitvecOps lets the fuzzer choose an operation, a boundary-ish
// width, and raw operand words, then cross-checks the Vec result against
// math/big. This is the word-level analogue of the difftest oracle: the
// reference semantics are big-integer arithmetic reduced mod 2^width.
func FuzzBitvecOps(f *testing.F) {
	f.Add(uint8(0), uint8(64), uint64(1), uint64(2), uint64(3), uint64(4), uint8(1))
	f.Add(uint8(5), uint8(65), ^uint64(0), uint64(1), ^uint64(0), uint64(0), uint8(64))
	f.Add(uint8(8), uint8(128), uint64(0), uint64(1)<<63, uint64(0), uint64(0), uint8(127))
	f.Fuzz(func(t *testing.T, opSel, widthSel uint8, xlo, xhi, ylo, yhi uint64, nSel uint8) {
		width := 1 + int(widthSel)%128
		x := New(width)
		y := New(width)
		x.Words[0] = xlo
		y.Words[0] = ylo
		if len(x.Words) > 1 {
			x.Words[1] = xhi
			y.Words[1] = yhi
		}
		x.normalize()
		y.normalize()
		xb, yb := x.Big(), y.Big()
		n := int(nSel) % (2*width + 2)
		switch opSel % 12 {
		case 0:
			checkBig(t, "Add", width, Add(width, x, y), new(big.Int).Add(xb, yb))
		case 1:
			checkBig(t, "Sub", width, Sub(width, x, y), new(big.Int).Sub(xb, yb))
		case 2:
			checkBig(t, "Mul", width, Mul(width, x, y), new(big.Int).Mul(xb, yb))
		case 3:
			if !y.IsZero() {
				checkBig(t, "Div", width, Div(width, x, y), new(big.Int).Div(xb, yb))
			}
		case 4:
			if !y.IsZero() {
				checkBig(t, "Rem", width, Rem(width, x, y), new(big.Int).Rem(xb, yb))
			}
		case 5:
			checkBig(t, "Shl", width, Shl(width, x, n), new(big.Int).Lsh(xb, uint(n)))
		case 6:
			checkBig(t, "Shr", width, Shr(width, x, n), new(big.Int).Rsh(xb, uint(n)))
		case 7:
			checkBig(t, "Asr", width, Asr(width, x, n), new(big.Int).Rsh(x.SignedBig(), uint(n)))
		case 8:
			if got, want := Cmp(x, y), xb.Cmp(yb); got != want {
				t.Fatalf("Cmp width %d: got %d want %d", width, got, want)
			}
		case 9:
			if got, want := CmpSigned(x, y), x.SignedBig().Cmp(y.SignedBig()); got != want {
				t.Fatalf("CmpSigned width %d: got %d want %d", width, got, want)
			}
		case 10:
			to := width + n
			if to > 256 {
				to = 256
			}
			checkBig(t, "SignExtend", to, SignExtend(to, x), x.SignedBig())
		case 11:
			checkBig(t, "And", width, And(width, x, y), new(big.Int).And(xb, yb))
			checkBig(t, "Or", width, Or(width, x, y), new(big.Int).Or(xb, yb))
			checkBig(t, "Xor", width, Xor(width, x, y), new(big.Int).Xor(xb, yb))
			checkBig(t, "Not", width, Not(x), new(big.Int).Not(xb))
		}
	})
}
