package service

import (
	"testing"
)

// TestValidatedEntryAccounting proves a -validate compile is charged
// honestly: the entry carries the validation metadata, its byte charge
// includes the certificate (arena peak included), the validation metrics
// move, and — because validation checks the artifact without changing it —
// the content address is the same as the plain compile's.
func TestValidatedEntryAccounting(t *testing.T) {
	plainReq := smallReq(1)
	valReq := plainReq
	valReq.Validate = true

	if plainReq.Key() != valReq.Key() {
		t.Fatalf("Validate changed the content address:\n%s\n%s", plainReq.Key(), valReq.Key())
	}

	mp := NewMetrics()
	plain, _, err := NewCache(1<<30, 2, 1, mp).GetOrCompile(plainReq)
	if err != nil {
		t.Fatal(err)
	}
	mv := NewMetrics()
	validated, _, err := NewCache(1<<30, 2, 1, mv).GetOrCompile(valReq)
	if err != nil {
		t.Fatal(err)
	}

	if !validated.Validated || validated.ValidateTime <= 0 {
		t.Fatalf("entry not marked validated (validated=%v time=%v)",
			validated.Validated, validated.ValidateTime)
	}
	if plain.Validated {
		t.Fatal("plain compile marked validated")
	}
	v := validated.Compiled.Verification
	if v == nil || v.Validation == nil {
		t.Fatal("validated entry carries no certificate")
	}
	if v.Validation.Proved+v.Validation.Probed != v.Validation.Pairs || v.Validation.Pairs == 0 {
		t.Fatalf("implausible certificate: %s", v.Validation)
	}

	// Same program, so the validated entry's extra charge must be exactly
	// the certificate (which includes the arena peak).
	cert := v.Validation.MemBytes()
	if cert <= 0 || cert < v.Validation.ArenaBytes || v.Validation.ArenaBytes <= 0 {
		t.Fatalf("certificate charge %d does not cover arena %d", cert, v.Validation.ArenaBytes)
	}
	if want := plain.Bytes + cert; validated.Bytes != want {
		t.Fatalf("validated entry charges %d bytes, want %d (plain %d + certificate %d)",
			validated.Bytes, want, plain.Bytes, cert)
	}

	// Metrics: one validation observed with a latency sample, none on the
	// plain path.
	if got := mv.validations.Load(); got != 1 {
		t.Fatalf("validations = %d, want 1", got)
	}
	if got := mp.validations.Load(); got != 0 {
		t.Fatalf("plain path counted %d validations", got)
	}
	snap := mv.snapshot()
	if snap.Compile.Validations != 1 || snap.Compile.ValidateLatency.Count != 1 {
		t.Fatalf("snapshot lost the validation sample: %+v", snap.Compile)
	}
}
