// Package service turns the Design→Partition→Compile→Simulate pipeline
// into a long-running concurrent server: a content-addressed compile cache
// (LRU by resident program bytes, singleflight dedup), a session manager
// for stateful simulations with admission control and idle reaping, an
// observability surface (/healthz, /metrics, structured request logs), a
// Go client, and a load generator. Everything is pure stdlib net/http +
// encoding/json.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	repcut "repro"
	"repro/internal/cgraph"
	"repro/internal/sim"
	"repro/internal/verify"
)

// CompileRequest names a design and the partition options to compile it
// with. Exactly one of Design (a built-in name, e.g. "SmallBOOM-2C") or
// Source (textual IR) must be set. The same struct parameterizes the CLI,
// the HTTP API, and the load generator.
type CompileRequest struct {
	Design string  `json:"design,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Source string  `json:"source,omitempty"`

	Threads    int     `json:"threads,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	Unweighted bool    `json:"unweighted,omitempty"`
	OptLevel   int     `json:"opt_level,omitempty"`
	Verify     bool    `json:"verify,omitempty"`
	// Validate runs translation validation during the compile (see
	// repcut.Options.Validate). Like Verify and Workers it is excluded from
	// the content address: validation checks the artifact, it never changes
	// it, so validated and unvalidated compiles of one design share a key.
	Validate bool `json:"validate,omitempty"`
}

// normalize applies the same defaults repcut.Options does, so requests
// that spell a default explicitly and requests that omit it hash alike.
func (r CompileRequest) normalize() CompileRequest {
	if r.Threads == 0 {
		r.Threads = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.OptLevel == 0 {
		r.OptLevel = 2
	}
	if r.Scale == 0 {
		r.Scale = 1
	}
	return r
}

// Options converts the request to partition options. Workers is a server
// policy, not part of the content address (output is bit-identical for
// every worker count), so it is supplied by the caller.
func (r CompileRequest) Options(workers int) repcut.Options {
	n := r.normalize()
	return repcut.Options{
		Threads: n.Threads, Epsilon: n.Epsilon, Seed: n.Seed,
		Unweighted: n.Unweighted, OptLevel: n.OptLevel, Verify: n.Verify,
		Validate: n.Validate, Workers: workers,
	}
}

// Key is the content address of the compile result: a SHA-256 over the
// design content (built-in name + scale, or the full IR source) and every
// partition option that can change the compiled program. Workers is
// deliberately excluded — compilation is bit-identical across worker
// counts — so the same design compiled on differently-sized servers
// shares one address.
func (r CompileRequest) Key() string {
	n := r.normalize()
	h := sha256.New()
	if n.Source != "" {
		fmt.Fprintf(h, "source\x00%d\x00%s\x00", len(n.Source), n.Source)
	} else {
		fmt.Fprintf(h, "builtin\x00%s\x00%g\x00", n.Design, n.Scale)
	}
	fmt.Fprintf(h, "k=%d e=%g s=%d uw=%t opt=%d",
		n.Threads, n.Epsilon, n.Seed, n.Unweighted, n.OptLevel)
	return hex.EncodeToString(h.Sum(nil))
}

// DesignStats is the wire form of cgraph.Stats (Table 1 statistics).
type DesignStats struct {
	IRNodes      int     `json:"ir_nodes"`
	Edges        int     `json:"edges"`
	SinkVertices int     `json:"sink_vertices"`
	SinkPct      float64 `json:"sink_pct"`
	RegWrites    int     `json:"reg_writes"`
	MemWrites    int     `json:"mem_writes"`
}

// StatsJSON converts graph statistics to their wire form.
func StatsJSON(s cgraph.Stats) DesignStats {
	return DesignStats{
		IRNodes: s.IRNodes, Edges: s.Edges, SinkVertices: s.SinkVtx,
		SinkPct: s.SinkPct, RegWrites: s.RegWrites, MemWrites: s.MemWrites,
	}
}

// PartitionSummary is the wire form of repcut.PartitionReport.
type PartitionSummary struct {
	Threads            int     `json:"threads"`
	ReplicationCost    float64 `json:"replication_cost"`
	ImbalanceExcl      float64 `json:"imbalance_excl"`
	ImbalanceIncl      float64 `json:"imbalance_incl"`
	ReplicatedVertices int     `json:"replicated_vertices"`
	PartWeights        []int64 `json:"part_weights,omitempty"`
	// CutCost is the partitioner's proxy objective Σ(λ−1)·ω (Formula 2).
	CutCost int64 `json:"cut_cost"`
	// DerepGroups/DerepRegs count applied dereplication groups and the
	// registers they demoted to the shared-read tier.
	DerepGroups int  `json:"derep_groups"`
	DerepRegs   int  `json:"derep_regs"`
	Refined     bool `json:"refined"`
	Profiled    bool `json:"profiled,omitempty"`
}

// PartitionJSON converts a partition report to its wire form (nil for
// serial compilations).
func PartitionJSON(r *repcut.PartitionReport) *PartitionSummary {
	if r == nil {
		return nil
	}
	return &PartitionSummary{
		Threads: r.Threads, ReplicationCost: r.ReplicationCost,
		ImbalanceExcl: r.ImbalanceExcl, ImbalanceIncl: r.ImbalanceIncl,
		ReplicatedVertices: r.ReplicatedVertices, PartWeights: r.PartWeights,
		CutCost: r.CutCost, DerepGroups: r.DerepGroups, DerepRegs: r.DerepRegs,
		Refined: r.Refined, Profiled: r.Profiled,
	}
}

// ProgramSummary describes a compiled program without shipping its code.
type ProgramSummary struct {
	Design  string `json:"design"`
	Threads int    `json:"threads"`
	Instrs  int    `json:"instrs"`
	// LinkedInstrs/FusionRate describe the linked execution form engines
	// actually run: the fused stream length and the fraction of interpreter
	// instructions absorbed by superinstruction fusion.
	LinkedInstrs int     `json:"linked_instrs"`
	FusionRate   float64 `json:"fusion_rate"`
	MemBytes     int64   `json:"mem_bytes"`
	StateBytes   int64   `json:"state_bytes"`
	Fingerprint  string  `json:"fingerprint"`
}

// ProgramJSON summarizes a compiled program for the wire.
func ProgramJSON(p *sim.Program) ProgramSummary {
	lp := p.Linked()
	return ProgramSummary{
		Design: p.Design, Threads: p.NumThreads, Instrs: p.TotalInstrs(),
		LinkedInstrs: lp.Stats.Linked, FusionRate: lp.Stats.FusionRate(),
		MemBytes: p.MemBytes(), StateBytes: p.StateBytes(),
		Fingerprint: fmt.Sprintf("%016x", p.Fingerprint()),
	}
}

// ValidationSummary is the wire form of a translation-validation
// certificate (internal/verify/tvalid): how many slot pairs were compared,
// how each was settled, and what the proof cost.
type ValidationSummary struct {
	Pairs      int     `json:"pairs"`
	Proved     int     `json:"proved"`
	Probed     int     `json:"probed"`
	ArenaBytes int64   `json:"arena_bytes"`
	ElapsedMs  float64 `json:"elapsed_ms"`
	Skipped    string  `json:"skipped,omitempty"`
}

// ValidationJSON extracts the validation summary from a verification
// report (nil when the compile did not validate).
func ValidationJSON(r *verify.Report) *ValidationSummary {
	if r == nil || r.Validation == nil {
		return nil
	}
	v := r.Validation
	return &ValidationSummary{
		Pairs: v.Pairs, Proved: v.Proved, Probed: v.Probed,
		ArenaBytes: v.ArenaBytes,
		ElapsedMs:  float64(v.Elapsed.Nanoseconds()) / 1e6,
		Skipped:    v.Skipped,
	}
}

// PortInfo names one top-level port.
type PortInfo struct {
	Name  string `json:"name"`
	Width int    `json:"width"`
	Wide  bool   `json:"wide,omitempty"`
}

// PortsJSON converts a slot table to its wire form.
func PortsJSON(slots []sim.PortSlot) []PortInfo {
	out := make([]PortInfo, len(slots))
	for i, s := range slots {
		out[i] = PortInfo{Name: s.Name, Width: s.Width, Wide: s.Wide}
	}
	return out
}

// DesignReport is the machine-readable report shared by `repcut -json`
// and the service: the CLI emits exactly this struct, the server embeds
// it in CompileResponse, so the two can never drift.
type DesignReport struct {
	Design     string             `json:"design"`
	Stats      DesignStats        `json:"stats"`
	Partition  *PartitionSummary  `json:"partition,omitempty"`
	Program    ProgramSummary     `json:"program"`
	Validation *ValidationSummary `json:"validation,omitempty"`
	Inputs     []PortInfo         `json:"inputs"`
	Outputs    []PortInfo         `json:"outputs"`
}

// ReportFor assembles the shared report for a compiled design.
func ReportFor(name string, stats cgraph.Stats, c *repcut.Compiled) DesignReport {
	return DesignReport{
		Design:     name,
		Stats:      StatsJSON(stats),
		Partition:  PartitionJSON(c.Report),
		Program:    ProgramJSON(c.Program),
		Validation: ValidationJSON(c.Verification),
		Inputs:     PortsJSON(c.Program.Inputs),
		Outputs:    PortsJSON(c.Program.Outputs),
	}
}

// CompileResponse is returned by POST /v1/compile.
type CompileResponse struct {
	Key          string  `json:"key"`
	CacheHit     bool    `json:"cache_hit"`
	CompileMs    float64 `json:"compile_ms"`
	DesignReport         // embedded: same shape as `repcut -json`
}

// CreateSessionRequest opens a stateful simulation over a cached program.
// Solo opts out of the lane-batched execution tier, forcing a private
// engine (e.g. for latency-sensitive interactive use).
type CreateSessionRequest struct {
	Key  string `json:"key"`
	Solo bool   `json:"solo,omitempty"`
}

// SessionResponse describes a session. Batched reports whether it runs on
// a shared batch-engine lane (an execution detail — the API behaves
// identically either way).
type SessionResponse struct {
	SessionID string `json:"session_id"`
	Design    string `json:"design,omitempty"`
	Cycle     uint64 `json:"cycle"`
	Batched   bool   `json:"batched,omitempty"`
}

// PokeRequest sets a narrow (≤64-bit) input port.
type PokeRequest struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// PeekRequest reads a narrow output port (or, with Reg, a register).
type PeekRequest struct {
	Name string `json:"name"`
	Reg  bool   `json:"reg,omitempty"`
}

// ValueResponse carries one peeked value.
type ValueResponse struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// StepRequest advances the simulation by Cycles cycles (0 means 1).
type StepRequest struct {
	Cycles int `json:"cycles,omitempty"`
}

// StepResponse reports the session's current cycle counter.
type StepResponse struct {
	Cycle uint64 `json:"cycle"`
}

// CheckpointResponse is returned by POST /v1/sessions/{id}/checkpoint: the
// session's serialized simulation state plus enough metadata to restore it
// on any server holding the same compiled fingerprint. State is the
// versioned, checksummed sim.Snapshot encoding (base64 over JSON);
// StateHash is the architectural state hash at checkpoint time, so the
// restoring side can prove bit-identical resumption.
type CheckpointResponse struct {
	SessionID   string `json:"session_id"`
	Key         string `json:"key"`
	Design      string `json:"design,omitempty"`
	Cycle       uint64 `json:"cycle"`
	Version     uint32 `json:"version"`
	Fingerprint string `json:"fingerprint"`
	StateHash   string `json:"state_hash"`
	State       []byte `json:"state"`
}

// RestoreSessionRequest opens a session resuming from a checkpoint taken on
// this server or a peer. Key must name a cached compile whose fingerprint
// matches the snapshot's.
type RestoreSessionRequest struct {
	Key   string `json:"key"`
	Solo  bool   `json:"solo,omitempty"`
	State []byte `json:"state"`
}

// ErrorResponse is the body of every non-2xx response. Peer and SessionID
// carry the forwarding address when the error is a session migration: the
// session now lives at Peer under SessionID, and the client should retry
// there.
type ErrorResponse struct {
	Error     string `json:"error"`
	Peer      string `json:"peer,omitempty"`
	SessionID string `json:"session_id,omitempty"`
}
