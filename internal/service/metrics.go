package service

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket b
// holds observations with ceil(log2(µs)) == b, so the range spans 1 µs to
// ~2⁷⁰ µs — wide enough for any compile.
const histBuckets = 40

// Hist is a lock-free log2 latency histogram. The zero value is ready to
// use.
type Hist struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 0 µs → bucket 0, 1 µs → 1, 2-3 µs → 2, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	h.buckets[b].Add(1)
}

// HistSnapshot is the wire form of a histogram: summary quantiles (upper
// bucket bounds, in milliseconds) plus the raw bucket counts.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	AvgMs   float64      `json:"avg_ms"`
	P50Ms   float64      `json:"p50_ms"`
	P90Ms   float64      `json:"p90_ms"`
	P99Ms   float64      `json:"p99_ms"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	LeMs  float64 `json:"le_ms"` // upper bound, milliseconds
	Count int64   `json:"count"`
}

// Snapshot renders the histogram. Quantiles are upper bucket bounds, so
// they over-estimate by at most 2x — fine for dashboards.
func (h *Hist) Snapshot() HistSnapshot {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.AvgMs = float64(h.sumNs.Load()) / float64(total) / 1e6
	q := func(p float64) float64 {
		want := int64(p * float64(total))
		if want < 1 {
			want = 1
		}
		cum := int64(0)
		for i := range counts {
			cum += counts[i]
			if cum >= want {
				return bucketBoundMs(i)
			}
		}
		return bucketBoundMs(histBuckets - 1)
	}
	s.P50Ms, s.P90Ms, s.P99Ms = q(0.50), q(0.90), q(0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeMs: bucketBoundMs(i), Count: c})
		}
	}
	return s
}

// bucketBoundMs is the inclusive upper bound of bucket b in milliseconds.
func bucketBoundMs(b int) float64 {
	if b == 0 {
		return 0.001
	}
	return float64(uint64(1)<<b-1) / 1000
}

// Metrics aggregates the server's counters. All fields are safe for
// concurrent update; Snapshot is assembled by the Server, which folds in
// the gauges (live sessions, cache occupancy) it owns.
type Metrics struct {
	start time.Time

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	compileErrors   atomic.Int64
	compileRejected atomic.Int64
	validations     atomic.Int64 // compiles that carried translation validation

	sessionsCreated  atomic.Int64
	sessionsClosed   atomic.Int64
	sessionsReaped   atomic.Int64
	sessionsRejected atomic.Int64

	sessionsCheckpointed atomic.Int64 // snapshots taken (API + drain-migrate)
	sessionsRestored     atomic.Int64 // sessions opened from a snapshot

	cyclesTotal atomic.Int64
	stepsTotal  atomic.Int64

	sessionsBatched atomic.Int64 // sessions placed on a batch lane
	sessionsSolo    atomic.Int64 // sessions given a private engine
	sessionsSpilled atomic.Int64 // batched sessions migrated off their lane
	batchRuns       atomic.Int64 // RunMasked rounds led
	batchRunLanes   atomic.Int64 // sum of lanes carried per round
	batchedCycles   atomic.Int64 // lane-cycles executed via batch groups

	codegenHits        atomic.Int64 // artifact warm in the store (no build)
	codegenMisses      atomic.Int64 // artifact built by this server
	codegenBuildErrors atomic.Int64 // emission/build/load failures
	codegenHotSwapped  atomic.Int64 // sessions swapped onto a native kernel

	compileLat      Hist
	validateLat     Hist
	stepLat         Hist
	codegenBuildLat Hist
}

// NewMetrics creates a metrics sink with the uptime clock started now.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// CacheMetrics is the cache section of /metrics.
type CacheMetrics struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	Evictions  int64   `json:"evictions"`
	Entries    int     `json:"entries"`
	Bytes      int64   `json:"bytes"`
	ByteBudget int64   `json:"byte_budget"`
}

// SessionMetrics is the session section of /metrics. Checkpointed counts
// snapshots taken (checkpoint API calls plus drain-time migration);
// Restored counts sessions opened from a snapshot (local restores plus
// migrations arriving from peers).
type SessionMetrics struct {
	Live         int   `json:"live"`
	Capacity     int   `json:"capacity"`
	Created      int64 `json:"created"`
	Closed       int64 `json:"closed"`
	Reaped       int64 `json:"reaped"`
	Rejected     int64 `json:"rejected"`
	Checkpointed int64 `json:"checkpointed"`
	Restored     int64 `json:"restored"`
}

// CompileMetrics is the compile section of /metrics. Validations counts
// cache misses whose compile carried translation validation; the separate
// latency histogram isolates the validator's overhead from the compile's.
type CompileMetrics struct {
	Errors          int64        `json:"errors"`
	Rejected        int64        `json:"rejected"`
	Validations     int64        `json:"validations"`
	Latency         HistSnapshot `json:"latency"`
	ValidateLatency HistSnapshot `json:"validate_latency"`
}

// SimMetrics is the simulation section of /metrics.
type SimMetrics struct {
	CyclesTotal  int64        `json:"cycles_total"`
	CyclesPerSec float64      `json:"cycles_per_sec"`
	Steps        int64        `json:"steps"`
	StepLatency  HistSnapshot `json:"step_latency"`
}

// BatchMetrics is the lane-batching section of /metrics. MeanLanesPerRun
// and OccupancyRatio measure coalescing quality: how many sessions each
// instruction dispatch actually carried, absolutely and relative to the
// configured lane width.
type BatchMetrics struct {
	LaneWidth       int     `json:"lane_width"`
	Groups          int     `json:"groups"`
	LanesOccupied   int     `json:"lanes_occupied"`
	LaneCapacity    int     `json:"lane_capacity"`
	SessionsBatched int64   `json:"sessions_batched"`
	SessionsSolo    int64   `json:"sessions_solo"`
	SessionsSpilled int64   `json:"sessions_spilled"`
	Runs            int64   `json:"runs"`
	MeanLanesPerRun float64 `json:"mean_lanes_per_run"`
	OccupancyRatio  float64 `json:"occupancy_ratio"`
	BatchedCycles   int64   `json:"batched_cycles"`
	BatchedCPS      float64 `json:"batched_cycles_per_sec"`
}

// CodegenMetrics is the native-codegen section of /metrics. ArtifactHits
// count build-behind requests satisfied by a warm artifact store;
// ArtifactMisses count plugin builds this server ran (BuildLatency is
// their wall time). SessionsHotSwapped counts private engines migrated
// from the linked interpreter onto a native kernel mid-session. The
// Store* gauges mirror the on-disk artifact store.
type CodegenMetrics struct {
	Enabled            bool         `json:"enabled"`
	Reason             string       `json:"reason,omitempty"` // why disabled, when requested but off
	ArtifactHits       int64        `json:"artifact_hits"`
	ArtifactMisses     int64        `json:"artifact_misses"`
	BuildErrors        int64        `json:"build_errors"`
	SessionsHotSwapped int64        `json:"sessions_hot_swapped"`
	BuildLatency       HistSnapshot `json:"build_latency"`
	StoreEntries       int          `json:"store_entries"`
	StoreBytes         int64        `json:"store_bytes"`
	StoreBudget        int64        `json:"store_budget"`
	StoreEvictions     int64        `json:"store_evictions"`
	StoreCorrupt       int64        `json:"store_corrupt"`
	KernelsLoaded      int          `json:"kernels_loaded"`
}

// ClusterMetrics is the cluster section of /metrics, filled by the cluster
// layer when this server is part of a multi-node fleet (absent otherwise).
// CompilesLocal counts misses this node compiled itself (it owned the key,
// the request was already routed, or peer fetch fell back); CompilesRouted
// counts misses resolved by fetching the artifact from the owning peer.
// The ArtifactFetch* counters break down the peer-fetch path: successes,
// fallbacks to local compile after a peer died, timeouts that shed the
// request, and corrupt bodies caught by the content hash. ArtifactsServed
// counts fetches this node answered for peers; NativeFetches counts native
// plugin artifacts pulled from peers instead of rebuilt.
type ClusterMetrics struct {
	Enabled                bool     `json:"enabled"`
	Self                   string   `json:"self"`
	Peers                  []string `json:"peers"`
	CompilesLocal          int64    `json:"compiles_local"`
	CompilesRouted         int64    `json:"compiles_routed"`
	ArtifactFetches        int64    `json:"artifact_fetches"`
	ArtifactFetchFallbacks int64    `json:"artifact_fetch_fallbacks"`
	ArtifactFetchTimeouts  int64    `json:"artifact_fetch_timeouts"`
	ArtifactFetchCorrupt   int64    `json:"artifact_fetch_corrupt"`
	ArtifactsServed        int64    `json:"artifacts_served"`
	NativeFetches          int64    `json:"native_fetches"`
	SessionsMigratedOut    int64    `json:"sessions_migrated_out"`
	SessionsMigratedIn     int64    `json:"sessions_migrated_in"`
}

// MetricsSnapshot is the full /metrics payload.
type MetricsSnapshot struct {
	UptimeSec float64         `json:"uptime_sec"`
	Cache     CacheMetrics    `json:"cache"`
	Sessions  SessionMetrics  `json:"sessions"`
	Compile   CompileMetrics  `json:"compile"`
	Sim       SimMetrics      `json:"sim"`
	Batch     BatchMetrics    `json:"batch"`
	Codegen   CodegenMetrics  `json:"codegen"`
	Cluster   *ClusterMetrics `json:"cluster,omitempty"`
}

// snapshot folds the counters into a wire snapshot; gauges (cache
// occupancy, live sessions) are filled in by the caller.
func (m *Metrics) snapshot() MetricsSnapshot {
	up := time.Since(m.start).Seconds()
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	cycles := m.cyclesTotal.Load()
	cps := 0.0
	if up > 0 {
		cps = float64(cycles) / up
	}
	return MetricsSnapshot{
		UptimeSec: up,
		Cache: CacheMetrics{
			Hits: hits, Misses: misses, HitRate: hitRate,
			Evictions: m.cacheEvictions.Load(),
		},
		Sessions: SessionMetrics{
			Created: m.sessionsCreated.Load(), Closed: m.sessionsClosed.Load(),
			Reaped: m.sessionsReaped.Load(), Rejected: m.sessionsRejected.Load(),
			Checkpointed: m.sessionsCheckpointed.Load(),
			Restored:     m.sessionsRestored.Load(),
		},
		Compile: CompileMetrics{
			Errors: m.compileErrors.Load(), Rejected: m.compileRejected.Load(),
			Validations:     m.validations.Load(),
			Latency:         m.compileLat.Snapshot(),
			ValidateLatency: m.validateLat.Snapshot(),
		},
		Sim: SimMetrics{
			CyclesTotal: cycles, CyclesPerSec: cps,
			Steps: m.stepsTotal.Load(), StepLatency: m.stepLat.Snapshot(),
		},
		Batch: m.batchSnapshot(up),
		Codegen: CodegenMetrics{
			ArtifactHits:       m.codegenHits.Load(),
			ArtifactMisses:     m.codegenMisses.Load(),
			BuildErrors:        m.codegenBuildErrors.Load(),
			SessionsHotSwapped: m.codegenHotSwapped.Load(),
			BuildLatency:       m.codegenBuildLat.Snapshot(),
		},
	}
}

// batchSnapshot renders the batching counters; the pool gauges (groups,
// occupancy, lane width) are filled in by the Server.
func (m *Metrics) batchSnapshot(uptimeSec float64) BatchMetrics {
	b := BatchMetrics{
		SessionsBatched: m.sessionsBatched.Load(),
		SessionsSolo:    m.sessionsSolo.Load(),
		SessionsSpilled: m.sessionsSpilled.Load(),
		Runs:            m.batchRuns.Load(),
		BatchedCycles:   m.batchedCycles.Load(),
	}
	if b.Runs > 0 {
		b.MeanLanesPerRun = float64(m.batchRunLanes.Load()) / float64(b.Runs)
	}
	if uptimeSec > 0 {
		b.BatchedCPS = float64(b.BatchedCycles) / uptimeSec
	}
	return b
}
