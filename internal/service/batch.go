package service

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// batchPool coalesces sessions that simulate the same compiled program
// into shared sim.BatchEngine groups, so the server executes one
// instruction dispatch for up to laneWidth sessions instead of one per
// session. Groups are keyed by program fingerprint; a session that cannot
// be batched (batching disabled, program ineligible, every group full and
// construction failed) falls back to a private engine at the caller.
type batchPool struct {
	laneWidth int
	m         *Metrics

	mu     sync.Mutex
	groups map[uint64][]*batchGroup
	seq    int64
}

// newBatchPool creates a pool handing out lanes in groups of laneWidth.
// Width <= 1 disables batching: alloc always declines.
func newBatchPool(laneWidth int, m *Metrics) *batchPool {
	return &batchPool{
		laneWidth: laneWidth,
		m:         m,
		groups:    make(map[uint64][]*batchGroup),
	}
}

// alloc claims a lane for a session over the entry's program, creating a
// new group when every existing one is full. ok=false means the session
// should run a private engine instead.
func (p *batchPool) alloc(e *Entry) (g *batchGroup, lane int, ok bool) {
	if p == nil || p.laneWidth <= 1 {
		return nil, 0, false
	}
	p.mu.Lock()
	for _, cand := range p.groups[e.Fingerprint] {
		cand.mu.Lock()
		for l, occ := range cand.occupied {
			if !occ {
				cand.occupied[l] = true
				cand.nOcc++
				g, lane = cand, l
				break
			}
		}
		cand.mu.Unlock()
		if g != nil {
			break
		}
	}
	if g == nil {
		be, err := sim.NewBatchEngine(e.Compiled.Program, p.laneWidth)
		if err != nil {
			// Program ineligible for lane batching (e.g. shared-mode).
			p.mu.Unlock()
			return nil, 0, false
		}
		p.seq++
		g = &batchGroup{
			pool:     p,
			fp:       e.Fingerprint,
			be:       be,
			occupied: make([]bool, p.laneWidth),
			target:   make([]int, p.laneWidth),
			mask:     make([]bool, p.laneWidth),
		}
		g.cond = sync.NewCond(&g.mu)
		g.occupied[0] = true
		g.nOcc = 1
		lane = 0
		p.groups[e.Fingerprint] = append(p.groups[e.Fingerprint], g)
	}
	p.mu.Unlock()
	// A recycled lane carries its previous occupant's state; give the new
	// session power-on state (register inits included).
	g.withEngine(func(be *sim.BatchEngine) error {
		be.ResetLane(lane)
		return nil
	})
	return g, lane, true
}

// free returns a lane to its group, dropping the group (and its engine)
// once the last occupant leaves.
func (p *batchPool) free(g *batchGroup, lane int) {
	p.mu.Lock()
	g.mu.Lock()
	g.occupied[lane] = false
	g.target[lane] = 0
	g.nOcc--
	empty := g.nOcc == 0
	g.mu.Unlock()
	if empty {
		list := p.groups[g.fp]
		for i, cand := range list {
			if cand == g {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(p.groups, g.fp)
		} else {
			p.groups[g.fp] = list
		}
	}
	p.mu.Unlock()
}

// stats reports the pool gauges: live groups, occupied lanes, and total
// lane capacity across groups.
func (p *batchPool) stats() (groups, occupied, capacity int) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, list := range p.groups {
		for _, g := range list {
			g.mu.Lock()
			groups++
			occupied += g.nOcc
			capacity += len(g.occupied)
			g.mu.Unlock()
		}
	}
	return groups, occupied, capacity
}

// batchGroup is one shared BatchEngine plus the frontier protocol that
// lets independent sessions step it concurrently. Each lane belongs to at
// most one session; sessions request cycles by raising their lane's
// target, and one session at a time becomes the round leader: it snapshots
// every lane with pending cycles, runs their common prefix in a single
// RunMasked call, and repeats until its own target drains. Sessions whose
// cycles were carried by someone else's round never touch the engine at
// all — that coalescing is where the batching win comes from.
//
// Engine-access invariant: e.be may be touched only while holding mu with
// running == false — except by the unique leader that set running = true,
// which runs RunMasked with the lock released so other sessions can
// register targets (and block politely) in the meantime.
type batchGroup struct {
	pool *batchPool
	fp   uint64
	be   *sim.BatchEngine

	mu       sync.Mutex
	cond     *sync.Cond
	running  bool
	occupied []bool
	nOcc     int
	target   []int  // pending cycles per lane
	mask     []bool // scratch round mask (leader-only while running)

	// nsPerCycle is an EWMA of wall nanoseconds per simulated cycle over
	// recent rounds, used to size the group-commit linger budget.
	nsPerCycle float64
}

// withEngine runs fn with exclusive, quiescent access to the engine.
func (g *batchGroup) withEngine(fn func(*sim.BatchEngine) error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.running {
		g.cond.Wait()
	}
	return fn(g.be)
}

// Group-commit linger: a would-be leader of an under-occupied round
// yields in batchLinger slices before running, giving co-tenant sessions'
// in-flight step requests a chance to register and share the round.
// Without it, on few cores, a round monopolizes the CPU so no companion
// can register until it ends, and every round degenerates to one lane
// paying the full lane-width execution cost. The total budget is sized
// proportionally to the predicted cost of the round about to run (lingerFrac
// of s cycles at the group's observed ns/cycle), so big rounds wait
// patiently for co-tenants finishing their poke/peek round trips while
// small rounds launch almost immediately; the clamps bound the added
// latency when the prediction is off or no history exists yet.
const (
	batchLinger    = 100 * time.Microsecond
	lingerFrac     = 0.1
	minLingerTotal = 200 * time.Microsecond
	maxLingerTotal = 5 * time.Millisecond
)

// lingerBudget sizes the group-commit linger for a round of s cycles.
// Caller holds g.mu.
func (g *batchGroup) lingerBudget(s int) time.Duration {
	d := time.Duration(lingerFrac * g.nsPerCycle * float64(s))
	if d < minLingerTotal {
		d = minLingerTotal
	}
	if d > maxLingerTotal {
		d = maxLingerTotal
	}
	return d
}

// step advances the session's lane by n cycles and returns its new cycle
// count. The calling session either leads rounds until its target drains
// or waits while another leader's rounds carry it.
func (g *batchGroup) step(lane, n int) uint64 {
	m := g.pool.m
	lingered := false
	g.mu.Lock()
	g.target[lane] += n
	for g.target[lane] > 0 {
		if g.running {
			g.cond.Wait()
			continue
		}
		// Lead one round: run the common frontier prefix of every lane
		// with pending cycles.
		s, lanes := 0, 0
		for l, t := range g.target {
			g.mask[l] = t > 0
			if t > 0 {
				lanes++
				if s == 0 || t < s {
					s = t
				}
			}
		}
		if !lingered && lanes < g.nOcc {
			// Under-occupied round with co-tenants: linger for a budget
			// proportional to the round's predicted cost, so companions mid
			// poke/peek round trip can register and share it. If one starts
			// leading meanwhile, its round carries this lane too.
			lingered = true
			deadline := time.Now().Add(g.lingerBudget(s))
			for lanes < g.nOcc && time.Now().Before(deadline) {
				g.mu.Unlock()
				time.Sleep(batchLinger)
				g.mu.Lock()
				if g.running {
					break
				}
				lanes = 0
				for _, t := range g.target {
					if t > 0 {
						lanes++
					}
				}
			}
			continue
		}
		g.running = true
		g.mu.Unlock()
		t0 := time.Now()
		g.be.RunMasked(s, g.mask)
		dt := time.Since(t0)
		g.mu.Lock()
		g.running = false
		if sample := float64(dt.Nanoseconds()) / float64(s); g.nsPerCycle == 0 {
			g.nsPerCycle = sample
		} else {
			g.nsPerCycle = 0.5*g.nsPerCycle + 0.5*sample
		}
		for l := range g.target {
			if g.mask[l] {
				g.target[l] -= s
			}
		}
		m.batchRuns.Add(1)
		m.batchRunLanes.Add(int64(lanes))
		m.batchedCycles.Add(int64(s) * int64(lanes))
		g.cond.Broadcast()
	}
	c := g.be.Cycles(lane)
	g.mu.Unlock()
	return c
}
