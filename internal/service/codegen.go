package service

import (
	"path/filepath"
	"sync"

	"repro/internal/codegen"
)

// codegenTier is the server's native-codegen build-behind layer: every
// compile-cache miss kicks an asynchronous plugin build against the
// content-addressed artifact store, sessions keep running on the linked
// interpreter in the meantime, and the session manager hot-swaps each
// private engine onto the native kernel the next time it is touched after
// the kernel lands. Sessions never wait on a build; a warm artifact store
// makes the swap near-instant on the first touch.
type codegenTier struct {
	store *codegen.Store
	m     *Metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// newCodegenTier opens (or creates) the artifact store and verifies the
// platform can actually build and load plugins. dir == "" uses a shared
// per-user directory so repeated server runs reuse warm artifacts.
func newCodegenTier(dir string, budget int64, m *Metrics) (*codegenTier, error) {
	if err := codegen.Supported(); err != nil {
		return nil, err
	}
	if dir == "" {
		dir = filepath.Join(codegen.DefaultBaseDir(), "service")
	}
	st, err := codegen.Open(dir, budget)
	if err != nil {
		return nil, err
	}
	return &codegenTier{store: st, m: m}, nil
}

// buildBehind starts the asynchronous native build for a freshly compiled
// entry. The entry publishes the kernel through its atomic pointer when
// the build (or artifact-store hit) completes; nothing blocks on it.
func (t *codegenTier) buildBehind(e *Entry) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		k, err := t.store.Kernel(e.Compiled.Program, codegen.EmitOptions{})
		if err != nil {
			t.m.codegenBuildErrors.Add(1)
			return
		}
		if k.Built {
			t.m.codegenMisses.Add(1)
			t.m.codegenBuildLat.Observe(k.BuildTime)
		} else {
			t.m.codegenHits.Add(1)
		}
		e.native.Store(k)
	}()
}

// close waits out in-flight builds and releases the store. Called during
// Shutdown after the session drain, so no new builds can start.
func (t *codegenTier) close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
	t.store.Close()
}
