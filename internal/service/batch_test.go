package service

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	repcut "repro"
)

// wireRef compiles wireSrc offline with the same options the server uses,
// giving a private reference simulator to compare batched sessions against.
func wireRef(t *testing.T, req CompileRequest) *repcut.Simulator {
	t.Helper()
	circ, err := repcut.ParseCircuit(wireSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := repcut.Elaborate(circ)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.CompileParallel(req.Options(1))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestBatchCoalescing proves the transparent-tier contract: sessions over
// the same program land on batch lanes, groups overflow into new groups at
// lane-width, and every lane's outputs are bit-identical to a private
// reference engine driven with that lane's own input trace.
func TestBatchCoalescing(t *testing.T) {
	req := CompileRequest{Source: wireSrc, Threads: 2, Seed: 1}
	srv, client := newTestServer(t, Config{Workers: 2, BatchLanes: 4})

	cr, err := client.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	in := firstNarrow(cr.Inputs)

	const nSess = 6 // 4-lane width → one full group + one partial
	sessions := make([]*SessionHandle, nSess)
	refs := make([]*repcut.Simulator, nSess)
	for i := range sessions {
		sessions[i], err = client.NewSession(cr.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !sessions[i].Batched {
			t.Fatalf("session %d not batched", i)
		}
		refs[i] = wireRef(t, req)
	}
	if groups, occ, cap := srv.Sessions().BatchStats(); groups != 2 || occ != 6 || cap != 8 {
		t.Fatalf("BatchStats = (%d groups, %d occupied, %d capacity), want (2, 6, 8)", groups, occ, cap)
	}

	// Distinct per-session traces with distinct step sizes, so the group
	// frontier must handle lanes at different cycle counts.
	for round := 0; round < 5; round++ {
		for i, sess := range sessions {
			rng := rand.New(rand.NewSource(int64(i)*977 + int64(round)))
			v := rng.Uint64() & 0xffff
			if err := sess.Poke(in, v); err != nil {
				t.Fatal(err)
			}
			if err := refs[i].PokeInput(in, v); err != nil {
				t.Fatal(err)
			}
			n := 1 + (i+round)%3
			if _, err := sess.Run(n); err != nil {
				t.Fatal(err)
			}
			refs[i].Run(n)
		}
		for i, sess := range sessions {
			for _, out := range []string{"outA", "outB"} {
				got, err := sess.Peek(out)
				if err != nil {
					t.Fatal(err)
				}
				want, err := refs[i].PeekOutput(out)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("round %d session %d %s = %#x, want %#x", round, i, out, got, want)
				}
			}
		}
	}

	// Closing every occupant of a group must drop it from the pool.
	for _, sess := range sessions {
		if _, err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if groups, occ, _ := srv.Sessions().BatchStats(); groups != 0 || occ != 0 {
		t.Fatalf("BatchStats after close = (%d groups, %d occupied), want (0, 0)", groups, occ)
	}
}

// TestBatchConcurrentFrontier drives one group from many goroutines at
// once — the combining-leader protocol under real contention, with each
// lane's trace checked against a private reference. Run with -race.
func TestBatchConcurrentFrontier(t *testing.T) {
	req := CompileRequest{Source: wireSrc, Threads: 2, Seed: 1}
	_, client := newTestServer(t, Config{Workers: 2, BatchLanes: 8})

	cr, err := client.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	in := firstNarrow(cr.Inputs)

	const nSess = 8
	var wg sync.WaitGroup
	errc := make(chan error, nSess)
	for i := 0; i < nSess; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := client.NewSession(cr.Key)
			if err != nil {
				errc <- err
				return
			}
			defer sess.Close()
			ref := wireRef(t, req)
			rng := rand.New(rand.NewSource(int64(i) * 7919))
			for step := 0; step < 30; step++ {
				v := rng.Uint64() & 0xffff
				if err := sess.Poke(in, v); err != nil {
					errc <- err
					return
				}
				if err := ref.PokeInput(in, v); err != nil {
					errc <- err
					return
				}
				n := 1 + rng.Intn(4)
				if _, err := sess.Run(n); err != nil {
					errc <- err
					return
				}
				ref.Run(n)
				got, err := sess.Peek("outA")
				if err != nil {
					errc <- err
					return
				}
				want, err := ref.PeekOutput("outA")
				if err != nil {
					errc <- err
					return
				}
				if got != want {
					t.Errorf("session %d step %d outA = %#x, want %#x", i, step, got, want)
					return
				}
			}
			errc <- nil
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchLaneRecycling closes a batched session and reopens one: the
// newcomer must land on the recycled lane with power-on state, not the
// previous occupant's residue.
func TestBatchLaneRecycling(t *testing.T) {
	req := CompileRequest{Source: wireSrc, Threads: 2, Seed: 1}
	srv, client := newTestServer(t, Config{Workers: 2, BatchLanes: 2})

	cr, err := client.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	in := firstNarrow(cr.Inputs)

	s1, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty s1's lane, then vacate it. s2 keeps the group alive.
	if err := s1.Poke(in, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(9); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Batched {
		t.Fatal("recycled session not batched")
	}
	if groups, occ, cap := srv.Sessions().BatchStats(); groups != 1 || occ != 2 || cap != 2 {
		t.Fatalf("BatchStats = (%d, %d, %d), want (1, 2, 2) — lane not recycled", groups, occ, cap)
	}
	// The recycled lane must behave exactly like a fresh engine.
	ref := wireRef(t, req)
	for step := 0; step < 6; step++ {
		v := uint64(step * 311)
		if err := s3.Poke(in, v); err != nil {
			t.Fatal(err)
		}
		if err := ref.PokeInput(in, v); err != nil {
			t.Fatal(err)
		}
		if _, err := s3.Run(1); err != nil {
			t.Fatal(err)
		}
		ref.Run(1)
		got, err := s3.Peek("outB")
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.PeekOutput("outB")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("step %d outB = %#x, want %#x — stale lane state", step, got, want)
		}
	}
	if _, err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSpillOnVCD starts waveform capture on a batched session: it
// must migrate to a private engine mid-flight with its lane state intact,
// free the lane, and produce a well-formed VCD. The group keeps serving
// its other occupant throughout.
func TestBatchSpillOnVCD(t *testing.T) {
	req := CompileRequest{Source: wireSrc, Threads: 2, Seed: 1}
	srv, client := newTestServer(t, Config{Workers: 2, BatchLanes: 4})

	cr, err := client.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	in := firstNarrow(cr.Inputs)

	spill, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	stay, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	ref := wireRef(t, req)

	// Advance the soon-to-spill session so the migration carries real state.
	for step := 0; step < 4; step++ {
		v := uint64(0x1000 + step)
		if err := spill.Poke(in, v); err != nil {
			t.Fatal(err)
		}
		if err := ref.PokeInput(in, v); err != nil {
			t.Fatal(err)
		}
		if _, err := spill.Run(1); err != nil {
			t.Fatal(err)
		}
		ref.Run(1)
	}

	// GET before POST is an error.
	if _, err := spill.VCD(); err == nil {
		t.Fatal("VCD fetch before capture started should fail")
	}
	if err := spill.StartVCD(); err != nil {
		t.Fatal(err)
	}
	if groups, occ, _ := srv.Sessions().BatchStats(); groups != 1 || occ != 1 {
		t.Fatalf("BatchStats after spill = (%d, %d), want (1, 1) — lane not freed", groups, occ)
	}

	// The spilled session continues from its exact pre-spill state.
	for step := 0; step < 5; step++ {
		v := uint64(0x2000 + step)
		if err := spill.Poke(in, v); err != nil {
			t.Fatal(err)
		}
		if err := ref.PokeInput(in, v); err != nil {
			t.Fatal(err)
		}
		if _, err := spill.Run(1); err != nil {
			t.Fatal(err)
		}
		ref.Run(1)
		got, err := spill.Peek("outA")
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.PeekOutput("outA")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-spill step %d outA = %#x, want %#x — state lost in migration", step, got, want)
		}
	}
	// The remaining occupant still batches fine.
	if _, err := stay.Run(3); err != nil {
		t.Fatal(err)
	}

	dump, err := spill.VCD()
	if err != nil {
		t.Fatal(err)
	}
	text := string(dump)
	for _, want := range []string{"$enddefinitions", "$var wire", "#"} {
		if !strings.Contains(text, want) {
			t.Fatalf("VCD dump missing %q:\n%.300s", want, text)
		}
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Batch.SessionsSpilled != 1 {
		t.Errorf("sessions_spilled = %d, want 1", m.Batch.SessionsSpilled)
	}
}

// TestBatchSoloAndMetrics checks the solo escape hatch and the /metrics
// batch section end to end.
func TestBatchSoloAndMetrics(t *testing.T) {
	req := CompileRequest{Source: wireSrc, Threads: 2, Seed: 1}
	_, client := newTestServer(t, Config{Workers: 2, BatchLanes: 4})

	cr, err := client.Compile(req)
	if err != nil {
		t.Fatal(err)
	}

	solo, err := client.NewSoloSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Batched {
		t.Fatal("solo session reported batched")
	}
	b1, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}

	// Raise both lanes' targets before any leader can finish, then step:
	// at least one run must carry more than one lane eventually; at
	// minimum the counters must add up.
	for i := 0; i < 10; i++ {
		if _, err := b1.Run(2); err != nil {
			t.Fatal(err)
		}
		if _, err := b2.Run(2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := solo.Run(5); err != nil {
		t.Fatal(err)
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	b := m.Batch
	if b.LaneWidth != 4 {
		t.Errorf("lane_width = %d, want 4", b.LaneWidth)
	}
	if b.SessionsSolo != 1 || b.SessionsBatched != 2 {
		t.Errorf("sessions solo/batched = %d/%d, want 1/2", b.SessionsSolo, b.SessionsBatched)
	}
	if b.Groups != 1 || b.LanesOccupied != 2 || b.LaneCapacity != 4 {
		t.Errorf("gauges = (%d, %d, %d), want (1, 2, 4)", b.Groups, b.LanesOccupied, b.LaneCapacity)
	}
	if b.Runs <= 0 {
		t.Fatalf("runs = %d, want > 0", b.Runs)
	}
	if b.MeanLanesPerRun < 1 {
		t.Errorf("mean_lanes_per_run = %v, want >= 1", b.MeanLanesPerRun)
	}
	if b.OccupancyRatio <= 0 || b.OccupancyRatio > 1 {
		t.Errorf("occupancy_ratio = %v, want in (0, 1]", b.OccupancyRatio)
	}
	// 2 batched sessions × 10 rounds × 2 cycles each.
	if b.BatchedCycles != 40 {
		t.Errorf("batched_cycles = %d, want 40", b.BatchedCycles)
	}
	if b.BatchedCPS <= 0 {
		t.Errorf("batched_cycles_per_sec = %v, want > 0", b.BatchedCPS)
	}
}

// TestBatchDisabled pins the off switch: BatchLanes < 0 means every
// session gets a private engine.
func TestBatchDisabled(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 2, BatchLanes: -1})
	cr, err := client.Compile(CompileRequest{Source: wireSrc, Threads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Batched {
		t.Fatal("session batched with batching disabled")
	}
	if _, err := sess.Run(3); err != nil {
		t.Fatal(err)
	}
}
