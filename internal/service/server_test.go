package service

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	repcut "repro"
)

// quietLogger drops request logs so -v test output stays readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer boots a service behind httptest with test-friendly knobs.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, NewClient(ts.URL)
}

// wireSrc is a small open design (a real top-level input) for driving
// input traces across the wire; the built-in benchmark designs are
// self-stimulating and closed.
const wireSrc = `
circuit WireDet {
  module WireDet {
    input  in   : UInt<16>
    output outA : UInt<16>
    output outB : UInt<16>
    reg a : UInt<16> init 1
    reg b : UInt<16> init 2
    reg c : UInt<16> init 3
    reg d : UInt<16> init 5
    node na = tail(add(a, in), 1)
    node nb = xor(b, na)
    node nc = tail(add(c, xor(in, d)), 1)
    node nd = tail(add(d, UInt<16>(7)), 1)
    a <= mux(eq(in, UInt<16>(0)), a, na)
    b <= nb
    c <= nc
    d <= mux(gt(nc, nd), nd, xor(nd, b))
    outA <= xor(a, c)
    outB <= tail(add(b, d), 1)
  }
}
`

// TestWireDeterminism proves the acceptance criterion: for a fixed seed
// and input trace, outputs peeked through a repcutd session are
// bit-identical to a direct sim.Engine run of the same design.
func TestWireDeterminism(t *testing.T) {
	req := CompileRequest{Source: wireSrc, Threads: 2, Seed: 1}
	_, client := newTestServer(t, Config{Workers: 2})

	cr, err := client.Compile(req)
	if err != nil {
		t.Fatal(err)
	}

	// Direct reference run: same design, same options, same trace.
	circ, err := repcut.ParseCircuit(wireSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := repcut.Elaborate(circ)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.CompileParallel(req.Options(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Program().Fingerprint(); cr.Program.Fingerprint != fpHex(want) {
		t.Fatalf("served fingerprint %s != offline %s", cr.Program.Fingerprint, fpHex(want))
	}

	in := firstNarrow(cr.Inputs)
	if in == "" {
		t.Fatal("design has no narrow input to drive")
	}
	var outs []string
	for _, o := range cr.Outputs {
		if !o.Wide {
			outs = append(outs, o.Name)
		}
	}
	if len(outs) == 0 {
		t.Fatal("design has no narrow outputs to compare")
	}

	sess, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	trace := []uint64{0, 1, 0xffff, 42, 7, 0, 0x1234, 3, 3, 0x8000}
	for step, v := range trace {
		if err := sess.Poke(in, v); err != nil {
			t.Fatal(err)
		}
		if err := ref.PokeInput(in, v); err != nil {
			t.Fatal(err)
		}
		cyc, err := sess.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		ref.Run(3)
		if cyc != ref.Cycles() {
			t.Fatalf("step %d: session cycles %d != reference %d", step, cyc, ref.Cycles())
		}
		for _, o := range outs {
			got, err := sess.Peek(o)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.PeekOutput(o)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("step %d: output %s = %#x over the wire, %#x direct", step, o, got, want)
			}
		}
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func fpHex(v uint64) string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b)
}

func TestConcurrentCompileOverWire(t *testing.T) {
	srv, client := newTestServer(t, Config{Workers: 1})
	req := smallReq(11)

	const N = 8
	resps := make([]*CompileResponse, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := client.Compile(req)
			if err != nil {
				t.Error(err)
				return
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()

	if got := srv.Cache().Len(); got != 1 {
		t.Errorf("cache entries = %d, want 1", got)
	}
	want := fpHex(offlineFingerprint(t, req))
	hits := 0
	for i, r := range resps {
		if r == nil {
			t.Fatalf("request %d failed", i)
		}
		if r.Program.Fingerprint != want {
			t.Errorf("request %d fingerprint %s != offline %s", i, r.Program.Fingerprint, want)
		}
		if r.CacheHit {
			hits++
		}
	}
	if hits != N-1 {
		t.Errorf("cache_hit count = %d, want %d (one miss)", hits, N-1)
	}
}

func TestSessionAdmission(t *testing.T) {
	srv, client := newTestServer(t, Config{MaxSessions: 2, Workers: 1})
	cr, err := client.Compile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = client.NewSession(cr.Key); err != nil {
		t.Fatal(err)
	}
	// Third create exceeds the limit → 429.
	_, err = client.NewSession(cr.Key)
	if StatusOf(err) != http.StatusTooManyRequests {
		t.Fatalf("third create: err = %v, want HTTP 429", err)
	}
	if got := srv.Metrics().Sessions.Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	// Closing one frees a slot.
	if _, err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSession(cr.Key); err != nil {
		t.Fatalf("create after close: %v", err)
	}
}

func TestIdleReaping(t *testing.T) {
	srv, client := newTestServer(t, Config{
		MaxSessions: 4, Workers: 1,
		IdleTimeout:  50 * time.Millisecond,
		ReapInterval: time.Hour, // reap manually for determinism
	})
	cr, err := client.Compile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Not yet idle: a reap "now" must not touch it.
	if n := srv.Sessions().Reap(time.Now()); n != 0 {
		t.Fatalf("reaped %d fresh sessions", n)
	}
	// An hour from now it is long idle.
	if n := srv.Sessions().Reap(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("reaped %d sessions, want 1", n)
	}
	if got := srv.Sessions().Live(); got != 0 {
		t.Errorf("live sessions = %d after reap", got)
	}
	if got := srv.Metrics().Sessions.Reaped; got != 1 {
		t.Errorf("reaped counter = %d, want 1", got)
	}
	// Operations on the reaped session report it gone (404).
	_, err = sess.Step()
	if StatusOf(err) != http.StatusNotFound {
		t.Fatalf("step after reap: err = %v, want HTTP 404", err)
	}
	// The freed slot admits a new session.
	if _, err := client.NewSession(cr.Key); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, client := newTestServer(t, Config{Workers: 1})
	cr, err := client.Compile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}

	// Hold an in-flight operation open while Shutdown runs: the drain
	// must wait for it rather than yanking the session.
	opEntered := make(chan struct{})
	opDone := make(chan struct{})
	go func() {
		defer close(opDone)
		err := srv.Sessions().Do(sess.ID, func(s *Session) error {
			close(opEntered)
			time.Sleep(100 * time.Millisecond)
			s.Run(1)
			return nil
		})
		if err != nil {
			t.Error("in-flight op failed during drain:", err)
		}
	}()
	<-opEntered

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Errorf("shutdown returned after %v — did not drain the in-flight op", waited)
	}
	select {
	case <-opDone:
	default:
		t.Error("shutdown returned before the in-flight op completed")
	}
	if got := srv.Sessions().Live(); got != 0 {
		t.Errorf("live sessions = %d after drain", got)
	}
	// Everything is refused while drained: ops and creates get 503/404.
	if _, err := sess.Step(); err == nil {
		t.Error("step succeeded after drain")
	}
	_, err = client.NewSession(cr.Key)
	if StatusOf(err) != http.StatusServiceUnavailable {
		t.Errorf("create after drain: err = %v, want HTTP 503", err)
	}
}

func TestHealthAndMetricsSurface(t *testing.T) {
	srv, client := newTestServer(t, Config{Workers: 1})
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	cr, err := client.Compile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Compile(smallReq(1)); err != nil { // a hit
		t.Fatal(err)
	}
	sess, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(25); err != nil {
		t.Fatal(err)
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.Cache.HitRate)
	}
	if m.Cache.Entries != 1 || m.Cache.Bytes <= 0 {
		t.Errorf("cache entries/bytes = %d/%d", m.Cache.Entries, m.Cache.Bytes)
	}
	if m.Sessions.Live != 1 || m.Sessions.Created != 1 {
		t.Errorf("sessions live/created = %d/%d, want 1/1", m.Sessions.Live, m.Sessions.Created)
	}
	if m.Sim.CyclesTotal != 25 {
		t.Errorf("cycles_total = %d, want 25", m.Sim.CyclesTotal)
	}
	if m.Sim.CyclesPerSec <= 0 {
		t.Errorf("cycles_per_sec = %v, want > 0", m.Sim.CyclesPerSec)
	}
	if m.Compile.Latency.Count != 1 || m.Compile.Latency.P50Ms <= 0 {
		t.Errorf("compile latency snapshot = %+v", m.Compile.Latency)
	}
	if m.Sim.StepLatency.Count != 1 {
		t.Errorf("step latency count = %d, want 1", m.Sim.StepLatency.Count)
	}
	_ = srv
}

func TestErrorPaths(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1, MaxRunCycles: 100})

	// Unknown design family → 400.
	_, err := client.Compile(CompileRequest{Design: "Zilog-1C", Threads: 2})
	if StatusOf(err) != http.StatusBadRequest {
		t.Errorf("unknown design: err = %v, want HTTP 400", err)
	}
	// Naming both halves → 400.
	_, err = client.Compile(CompileRequest{Design: "RocketChip-1C", Source: "circuit x", Threads: 2})
	if StatusOf(err) != http.StatusBadRequest {
		t.Errorf("design+source: err = %v, want HTTP 400", err)
	}
	// Session over an unknown key → 404.
	_, err = client.NewSession(strings.Repeat("ab", 32))
	if StatusOf(err) != http.StatusNotFound {
		t.Errorf("unknown key: err = %v, want HTTP 404", err)
	}

	cr, err := client.Compile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Bad port name → 400.
	if err := sess.Poke("io_no_such_port", 1); StatusOf(err) != http.StatusBadRequest {
		t.Errorf("bad poke: err = %v, want HTTP 400", err)
	}
	if _, err := sess.Peek("io_no_such_port"); StatusOf(err) != http.StatusBadRequest {
		t.Errorf("bad peek: err = %v, want HTTP 400", err)
	}
	// Cycle cap → 400.
	if _, err := sess.Run(101); StatusOf(err) != http.StatusBadRequest {
		t.Errorf("over-cap run: err = %v, want HTTP 400", err)
	}
	// Ops on a closed session → 404.
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); StatusOf(err) != http.StatusNotFound {
		t.Errorf("step after close: err = %v, want HTTP 404", err)
	}
	if _, err := sess.Close(); StatusOf(err) != http.StatusNotFound {
		t.Errorf("double close: err = %v, want HTTP 404", err)
	}
}

// TestConcurrentSessions runs many sessions over one cached program in
// parallel under -race: engines must share nothing but the program.
func TestConcurrentSessions(t *testing.T) {
	_, client := newTestServer(t, Config{MaxSessions: 32, Workers: 2})
	cr, err := client.Compile(CompileRequest{Source: wireSrc, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := firstNarrow(cr.Inputs)
	out := firstNarrow(cr.Outputs)

	const N = 8
	finals := make([]uint64, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := client.NewSession(cr.Key)
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			// Identical traces must produce identical outputs in every
			// session, no matter how the others interleave.
			if err := sess.Poke(in, 5); err != nil {
				t.Error(err)
				return
			}
			if _, err := sess.Run(50); err != nil {
				t.Error(err)
				return
			}
			v, err := sess.Peek(out)
			if err != nil {
				t.Error(err)
				return
			}
			finals[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < N; i++ {
		if finals[i] != finals[0] {
			t.Fatalf("session %d diverged: %#x != %#x", i, finals[i], finals[0])
		}
	}
}
