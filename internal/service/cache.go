package service

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	repcut "repro"
	"repro/internal/cgraph"
	"repro/internal/codegen"
	"repro/internal/designs"
	"repro/internal/firrtl"
	"repro/internal/par"
)

// ErrCompileBusy is returned when the compile admission semaphore is full:
// the server is already compiling (or has queued) its configured maximum
// and sheds further misses with 503 rather than queueing unboundedly.
var ErrCompileBusy = errors.New("service: compile queue full")

// Entry is one immutable cache resident: the compiled artifact plus the
// metadata every response needs. Sessions hold their own reference to the
// Compiled program, so evicting an Entry never invalidates live sessions —
// it only drops the cache's pin.
type Entry struct {
	Key         string
	Name        string // canonical design name
	Compiled    *repcut.Compiled
	Stats       cgraph.Stats
	Fingerprint uint64
	// Bytes is the LRU charge: resident program bytes plus, for validated
	// compiles, the translation-validation certificate (including its peak
	// hash-cons arena — re-validating on a refill costs that much again).
	Bytes        int64
	CompileTime  time.Duration // the miss's wall-clock compile latency
	Validated    bool          // the compile carried translation validation
	ValidateTime time.Duration // wall time the validation pass took

	// native is published by the codegen tier's asynchronous build-behind
	// once the entry's native kernel is built (or found warm in the
	// artifact store); nil until then. Sessions poll it via Native and
	// hot-swap their private engines onto it.
	native atomic.Pointer[codegen.Kernel]
}

// Native returns the entry's native kernel, or nil while the build-behind
// is still running (or the codegen tier is disabled).
func (e *Entry) Native() *codegen.Kernel { return e.native.Load() }

// Report renders the entry as the shared CLI/server report shape.
func (e *Entry) Report() DesignReport {
	return ReportFor(e.Name, e.Stats, e.Compiled)
}

// flight is one in-progress compile that concurrent requesters for the
// same key wait on (singleflight).
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// Cache is the content-addressed compile cache: at most one compile per
// key is ever in flight (joiners block on it and count as hits), resident
// entries are bounded by a byte budget with LRU eviction, and compile
// *executions* are bounded by an admission semaphore (par.Sem) so a cold
// cache cannot fork an unbounded number of partition pipelines.
type Cache struct {
	budget  int64
	workers int
	sem     *par.Sem
	m       *Metrics
	cg      *codegenTier // nil unless the native build-behind tier is on

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // front = most recently used; values are *Entry
	byKey   map[string]*list.Element
	flights map[string]*flight
}

// NewCache creates a cache with the given resident-byte budget, at most
// maxCompiles concurrently executing compiles, and the given per-compile
// worker bound (internal/par pool size; 0 = all cores).
func NewCache(budget int64, maxCompiles, workers int, m *Metrics) *Cache {
	if m == nil {
		m = NewMetrics()
	}
	return &Cache{
		budget:  budget,
		workers: workers,
		sem:     par.NewSem(maxCompiles),
		m:       m,
		lru:     list.New(),
		byKey:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Lookup returns the entry for a key without compiling, touching the LRU
// on hit. It does not count toward hit/miss metrics (it backs session
// creation, not compile traffic).
func (c *Cache) Lookup(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*Entry), true
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// BytesResident returns the current resident-byte total.
func (c *Cache) BytesResident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// GetOrCompile returns the entry for the request's content address,
// compiling it at most once no matter how many callers race: the first
// miss becomes the flight leader (subject to compile admission), everyone
// else joins the flight and is counted as a hit — they paid no compile.
func (c *Cache) GetOrCompile(req CompileRequest) (*Entry, bool, error) {
	key := req.Key()
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.m.cacheHits.Add(1)
		return el.Value.(*Entry), true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.m.cacheHits.Add(1)
		return f.e, true, nil
	}
	// Miss: become the flight leader, if the compile queue admits us.
	if !c.sem.TryAcquire() {
		c.mu.Unlock()
		c.m.compileRejected.Add(1)
		return nil, false, ErrCompileBusy
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.m.cacheMisses.Add(1)
	c.mu.Unlock()

	start := time.Now()
	e, err := c.compile(req, key)
	c.sem.Release()
	if err != nil {
		c.m.compileErrors.Add(1)
	} else {
		e.CompileTime = time.Since(start)
		c.m.compileLat.Observe(e.CompileTime)
	}

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.byKey[key] = c.lru.PushFront(e)
		c.bytes += e.Bytes
		c.evictLocked()
		// Kick the asynchronous native build for the new resident; the
		// kernel hot-swaps into live sessions when it lands.
		if c.cg != nil {
			c.cg.buildBehind(e)
		}
	}
	f.e, f.err = e, err
	close(f.done)
	c.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	return e, false, nil
}

// Install inserts an externally assembled entry — a compiled artifact
// fetched from a cluster peer — into the cache. If the key is already
// resident the existing entry wins and is returned, so racing fetch and
// local compile converge on one entry. The native build-behind is kicked
// for fresh installs that did not arrive with a kernel.
func (c *Cache) Install(e *Entry) *Entry {
	c.mu.Lock()
	if el, ok := c.byKey[e.Key]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return el.Value.(*Entry)
	}
	c.byKey[e.Key] = c.lru.PushFront(e)
	c.bytes += e.Bytes
	c.evictLocked()
	cg := c.cg
	c.mu.Unlock()
	if cg != nil && e.Native() == nil {
		cg.buildBehind(e)
	}
	return e
}

// evictLocked drops least-recently-used entries until the resident bytes
// fit the budget, always keeping the most recent entry so a single
// over-budget program still serves.
func (c *Cache) evictLocked() {
	for c.bytes > c.budget && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*Entry)
		c.lru.Remove(el)
		delete(c.byKey, e.Key)
		c.bytes -= e.Bytes
		c.m.cacheEvictions.Add(1)
	}
}

// compile resolves the design and runs the partition+compile pipeline.
func (c *Cache) compile(req CompileRequest, key string) (*Entry, error) {
	req = req.normalize()
	circ, name, err := resolveDesign(req)
	if err != nil {
		return nil, err
	}
	d, err := repcut.Elaborate(circ)
	if err != nil {
		return nil, err
	}
	compiled, err := d.CompileProgram(req.Options(c.workers))
	if err != nil {
		return nil, err
	}
	e := &Entry{
		Key:         key,
		Name:        name,
		Compiled:    compiled,
		Stats:       d.Stats(),
		Fingerprint: compiled.Program.Fingerprint(),
		Bytes:       compiled.Program.MemBytes(),
	}
	if v := compiled.Verification; v != nil && v.Validation != nil {
		e.Bytes += v.Validation.MemBytes()
		e.Validated = true
		e.ValidateTime = v.Validation.Elapsed
		c.m.validations.Add(1)
		c.m.validateLat.Observe(e.ValidateTime)
	}
	return e, nil
}

// resolveDesign turns a request's design half into a checked circuit.
func resolveDesign(req CompileRequest) (*firrtl.Circuit, string, error) {
	switch {
	case req.Design != "" && req.Source != "":
		return nil, "", fmt.Errorf("service: set either design or source, not both")
	case req.Source != "":
		circ, err := repcut.ParseCircuit(req.Source)
		if err != nil {
			return nil, "", err
		}
		return circ, circ.Name, nil
	case req.Design != "":
		cfg, err := designs.ParseName(req.Design)
		if err != nil {
			return nil, "", err
		}
		cfg.Scale = req.Scale
		return designs.BuildCircuit(cfg), cfg.Name(), nil
	}
	return nil, "", fmt.Errorf("service: request names no design (set design or source)")
}
