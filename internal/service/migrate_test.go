package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestCheckpointRestoreRoundTrip: checkpoint a session, restore the blob
// into a fresh session on the same server, and verify the copy is at the
// same cycle with the same state hash.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1, BatchLanes: 4})
	cr, err := client.Compile(CompileRequest{Source: wireSrc, Threads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := client.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("in", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycle != 5 || len(cp.State) == 0 || cp.StateHash == "" {
		t.Fatalf("bad checkpoint: %+v", cp)
	}
	restored, err := client.RestoreSession(cr.Key, cp.State, false)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := restored.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Cycle != cp.Cycle || cp2.StateHash != cp.StateHash {
		t.Fatalf("restored session diverges: %s@%d, want %s@%d",
			cp2.StateHash, cp2.Cycle, cp.StateHash, cp.Cycle)
	}
	// Both copies see the same future.
	for _, h := range []*SessionHandle{s, restored} {
		if err := h.Poke("in", 3); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Run(4); err != nil {
			t.Fatal(err)
		}
	}
	a, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if a.StateHash != b.StateHash {
		t.Fatalf("copies diverged after identical stimulus: %s vs %s", a.StateHash, b.StateHash)
	}
}

// TestClientFollowsMigration: a server that has migrated a session away
// answers with 503 + Retry-After + the peer address, and the client-side
// session handle follows the forwarding address transparently.
func TestClientFollowsMigration(t *testing.T) {
	srvA, clientA := newTestServer(t, Config{Workers: 1})
	_, clientB := newTestServer(t, Config{Workers: 1})

	cr, err := clientB.Compile(CompileRequest{Source: wireSrc, Threads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	real, err := clientB.NewSession(cr.Key)
	if err != nil {
		t.Fatal(err)
	}
	// A pretends it once held the session and migrated it to B. The peer is
	// recorded host:port (as the cluster does); the client must add the
	// scheme itself.
	const oldID = "s0000dead"
	peer := strings.TrimPrefix(clientB.BaseURL, "http://")
	srvA.Sessions().MarkMigrated(oldID, peer, real.ID)

	// The raw protocol: 503, Retry-After, and a forwarding address.
	resp, err := http.Post(clientA.BaseURL+"/v1/sessions/"+oldID+"/run",
		"application/json", bytes.NewReader([]byte(`{"cycles":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("migrated session answered HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 for a migrated session came without Retry-After")
	}
	if decodeErr != nil || er.Peer != peer || er.SessionID != real.ID {
		t.Fatalf("forwarding address wrong: %+v (decode err %v)", er, decodeErr)
	}

	// The client handle follows: one op against A lands on B.
	h := &SessionHandle{c: clientA, ID: oldID}
	n, err := h.Run(3)
	if err != nil {
		t.Fatalf("handle did not follow migration: %v", err)
	}
	if n != 3 {
		t.Fatalf("followed run returned cycle %d, want 3", n)
	}
	if h.ID != real.ID {
		t.Fatalf("handle ID is %s after follow, want %s", h.ID, real.ID)
	}
	// Subsequent ops go straight to B.
	if _, err := h.Run(2); err != nil {
		t.Fatal(err)
	}
	cp, err := real.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycle != 5 {
		t.Fatalf("session on B at cycle %d, want 5", cp.Cycle)
	}
	// Closing through the old address follows too.
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
