package service

import (
	"strings"
	"testing"
	"time"
)

func TestLoadgenMixedWorkload(t *testing.T) {
	srv, client := newTestServer(t, Config{Workers: 1})
	res, err := RunLoadgen(client.BaseURL, LoadgenConfig{
		Designs: []CompileRequest{
			{Design: "RocketChip-1C", Scale: 0.25, Threads: 2},
			{Design: "SmallBOOM-1C", Scale: 0.25, Threads: 2},
		},
		Clients:          4,
		Duration:         400 * time.Millisecond,
		CyclesPerSession: 40,
		StepsPerSession:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("loadgen saw %d errors", res.Errors)
	}
	if res.Sessions == 0 || res.Cycles == 0 {
		t.Fatalf("no load generated: %+v", res)
	}
	if res.Metrics == nil {
		t.Fatal("no metrics snapshot collected")
	}
	// The acceptance bar: a mixed workload over a warm cache must hit
	// at least half the time (in practice ≥90%: one miss per design).
	if res.Metrics.Cache.HitRate < 0.5 {
		t.Errorf("cache hit rate %.3f < 0.5 under mixed workload", res.Metrics.Cache.HitRate)
	}
	if got := srv.Cache().Len(); got != 2 {
		t.Errorf("cache entries = %d, want 2", got)
	}

	// The table carries one row per design plus a total.
	tbl := res.Table().String()
	for _, want := range []string{"RocketChip-1C@2t", "SmallBOOM-1C@2t", "TOTAL", "sessions/s", "cycles/s"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if sum := res.Summary(); !strings.Contains(sum, "hit rate") {
		t.Errorf("summary missing hit rate:\n%s", sum)
	}
	// All sessions closed cleanly when their workload unit finished.
	if live := srv.Sessions().Live(); live != 0 {
		t.Errorf("%d sessions leaked after loadgen", live)
	}
}
