package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// APIError is a non-2xx response from the server, preserving the status
// code so callers can react to admission control (429/503) specifically.
// Peer/SessionID carry the forwarding address when the server reports the
// session migrated to a peer; RetryAfter is the Retry-After header in
// seconds (0 when absent).
type APIError struct {
	Status     int
	Message    string
	Peer       string
	SessionID  string
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// StatusOf extracts the HTTP status of an error (0 for non-API errors).
func StatusOf(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// Client is a Go client for a repcutd server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client for the given base URL
// (e.g. "http://127.0.0.1:8372").
func NewClient(base string) *Client {
	return &Client{BaseURL: base, HTTP: http.DefaultClient}
}

// do POSTs (or sends method) a JSON body and decodes the JSON response.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// apiError assembles an APIError from a non-2xx response, extracting the
// migration forwarding address and Retry-After when present.
func apiError(resp *http.Response, data []byte) *APIError {
	ae := &APIError{Status: resp.StatusCode, Message: string(data)}
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		ae.Message = er.Error
		ae.Peer, ae.SessionID = er.Peer, er.SessionID
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil {
			ae.RetryAfter = n
		}
	}
	return ae
}

// Health checks /healthz.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the /metrics snapshot.
func (c *Client) Metrics() (*MetricsSnapshot, error) {
	var m MetricsSnapshot
	if err := c.do(http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Compile requests a compile (served from cache when resident).
func (c *Client) Compile(req CompileRequest) (*CompileResponse, error) {
	var resp CompileResponse
	if err := c.do(http.MethodPost, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// NewSession opens a stateful simulation over a cached program, placed on
// the server's batched execution tier when possible.
func (c *Client) NewSession(key string) (*SessionHandle, error) {
	return c.newSession(CreateSessionRequest{Key: key})
}

// NewSoloSession opens a session pinned to a private engine, bypassing
// the batched tier.
func (c *Client) NewSoloSession(key string) (*SessionHandle, error) {
	return c.newSession(CreateSessionRequest{Key: key, Solo: true})
}

func (c *Client) newSession(req CreateSessionRequest) (*SessionHandle, error) {
	var resp SessionResponse
	if err := c.do(http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &SessionHandle{c: c, ID: resp.SessionID, Design: resp.Design, Batched: resp.Batched}, nil
}

// SessionHandle drives one server-side session.
type SessionHandle struct {
	c       *Client
	ID      string
	Design  string
	Batched bool // placed on a batch lane at create time
}

func (s *SessionHandle) path(op string) string {
	return "/v1/sessions/" + s.ID + "/" + op
}

// do sends one session operation, following a migration forwarding address
// once: when the server answers 503 with a peer + session ID (the session
// moved there during a drain), the handle re-targets itself at the peer and
// retries the operation against the migrated session.
func (s *SessionHandle) do(method, op string, in, out any) error {
	err := s.c.do(method, s.path(op), in, out)
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable &&
		ae.Peer != "" && ae.SessionID != "" {
		base := ae.Peer
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		s.c = &Client{BaseURL: base, HTTP: s.c.HTTP}
		s.ID = ae.SessionID
		return s.c.do(method, s.path(op), in, out)
	}
	return err
}

// Poke sets a narrow input port.
func (s *SessionHandle) Poke(name string, v uint64) error {
	return s.do(http.MethodPost, "poke", PokeRequest{Name: name, Value: v}, nil)
}

// Peek reads a narrow output port.
func (s *SessionHandle) Peek(name string) (uint64, error) {
	var resp ValueResponse
	if err := s.do(http.MethodPost, "peek", PeekRequest{Name: name}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// PeekReg reads a narrow register.
func (s *SessionHandle) PeekReg(name string) (uint64, error) {
	var resp ValueResponse
	if err := s.do(http.MethodPost, "peek", PeekRequest{Name: name, Reg: true}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// Step advances one cycle and returns the session's total cycles.
func (s *SessionHandle) Step() (uint64, error) { return s.Run(1) }

// Run advances n cycles and returns the session's total cycles.
func (s *SessionHandle) Run(n int) (uint64, error) {
	var resp StepResponse
	if err := s.do(http.MethodPost, "run", StepRequest{Cycles: n}, &resp); err != nil {
		return 0, err
	}
	return resp.Cycle, nil
}

// Checkpoint serializes the session's simulation state; the result restores
// on any server whose cache holds the same key.
func (s *SessionHandle) Checkpoint() (*CheckpointResponse, error) {
	var resp CheckpointResponse
	if err := s.do(http.MethodPost, "checkpoint", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// StartVCD begins waveform capture on the session (spilling it off any
// batch lane server-side).
func (s *SessionHandle) StartVCD() error {
	return s.do(http.MethodPost, "vcd", nil, nil)
}

// VCD fetches the waveform dump accumulated since StartVCD.
func (s *SessionHandle) VCD() ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, s.c.BaseURL+s.path("vcd"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, data)
	}
	return data, nil
}

// Close tears the session down, returning its final cycle count.
func (s *SessionHandle) Close() (uint64, error) {
	var resp StepResponse
	if err := s.do(http.MethodPost, "close", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Cycle, nil
}

// RestoreSession opens a session resuming from a checkpoint taken on this
// server or a peer. The key must already be compiled here.
func (c *Client) RestoreSession(key string, state []byte, solo bool) (*SessionHandle, error) {
	var resp SessionResponse
	req := RestoreSessionRequest{Key: key, Solo: solo, State: state}
	if err := c.do(http.MethodPost, "/v1/sessions/restore", req, &resp); err != nil {
		return nil, err
	}
	return &SessionHandle{c: c, ID: resp.SessionID, Design: resp.Design, Batched: resp.Batched}, nil
}
