package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// APIError is a non-2xx response from the server, preserving the status
// code so callers can react to admission control (429/503) specifically.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// StatusOf extracts the HTTP status of an error (0 for non-API errors).
func StatusOf(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// Client is a Go client for a repcutd server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client for the given base URL
// (e.g. "http://127.0.0.1:8372").
func NewClient(base string) *Client {
	return &Client{BaseURL: base, HTTP: http.DefaultClient}
}

// do POSTs (or sends method) a JSON body and decodes the JSON response.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health checks /healthz.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the /metrics snapshot.
func (c *Client) Metrics() (*MetricsSnapshot, error) {
	var m MetricsSnapshot
	if err := c.do(http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Compile requests a compile (served from cache when resident).
func (c *Client) Compile(req CompileRequest) (*CompileResponse, error) {
	var resp CompileResponse
	if err := c.do(http.MethodPost, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// NewSession opens a stateful simulation over a cached program, placed on
// the server's batched execution tier when possible.
func (c *Client) NewSession(key string) (*SessionHandle, error) {
	return c.newSession(CreateSessionRequest{Key: key})
}

// NewSoloSession opens a session pinned to a private engine, bypassing
// the batched tier.
func (c *Client) NewSoloSession(key string) (*SessionHandle, error) {
	return c.newSession(CreateSessionRequest{Key: key, Solo: true})
}

func (c *Client) newSession(req CreateSessionRequest) (*SessionHandle, error) {
	var resp SessionResponse
	if err := c.do(http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &SessionHandle{c: c, ID: resp.SessionID, Design: resp.Design, Batched: resp.Batched}, nil
}

// SessionHandle drives one server-side session.
type SessionHandle struct {
	c       *Client
	ID      string
	Design  string
	Batched bool // placed on a batch lane at create time
}

func (s *SessionHandle) path(op string) string {
	return "/v1/sessions/" + s.ID + "/" + op
}

// Poke sets a narrow input port.
func (s *SessionHandle) Poke(name string, v uint64) error {
	return s.c.do(http.MethodPost, s.path("poke"), PokeRequest{Name: name, Value: v}, nil)
}

// Peek reads a narrow output port.
func (s *SessionHandle) Peek(name string) (uint64, error) {
	var resp ValueResponse
	if err := s.c.do(http.MethodPost, s.path("peek"), PeekRequest{Name: name}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// PeekReg reads a narrow register.
func (s *SessionHandle) PeekReg(name string) (uint64, error) {
	var resp ValueResponse
	if err := s.c.do(http.MethodPost, s.path("peek"), PeekRequest{Name: name, Reg: true}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// Step advances one cycle and returns the session's total cycles.
func (s *SessionHandle) Step() (uint64, error) { return s.Run(1) }

// Run advances n cycles and returns the session's total cycles.
func (s *SessionHandle) Run(n int) (uint64, error) {
	var resp StepResponse
	if err := s.c.do(http.MethodPost, s.path("run"), StepRequest{Cycles: n}, &resp); err != nil {
		return 0, err
	}
	return resp.Cycle, nil
}

// StartVCD begins waveform capture on the session (spilling it off any
// batch lane server-side).
func (s *SessionHandle) StartVCD() error {
	return s.c.do(http.MethodPost, s.path("vcd"), nil, nil)
}

// VCD fetches the waveform dump accumulated since StartVCD.
func (s *SessionHandle) VCD() ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, s.c.BaseURL+s.path("vcd"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &APIError{Status: resp.StatusCode, Message: msg}
	}
	return data, nil
}

// Close tears the session down, returning its final cycle count.
func (s *SessionHandle) Close() (uint64, error) {
	var resp StepResponse
	if err := s.c.do(http.MethodPost, s.path("close"), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Cycle, nil
}
