package service

import (
	"testing"
	"time"

	repcut "repro"
	"repro/internal/codegen"
)

// waitNative polls for the build-behind to publish the entry's kernel.
func waitNative(t *testing.T, e *Entry, timeout time.Duration) *codegen.Kernel {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if k := e.Native(); k != nil {
			return k
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("build-behind never published a native kernel")
	return nil
}

// TestCodegenHotSwapMatchesLinked is the service-tier correctness check:
// a solo session created while the native kernel is still building runs
// interpreted, hot-swaps onto the kernel mid-session, and must track a
// plain linked simulator cycle for cycle across the swap.
func TestCodegenHotSwapMatchesLinked(t *testing.T) {
	if err := codegen.Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	srv, _ := newTestServer(t, Config{Codegen: true, CodegenDir: t.TempDir()})

	e, _, err := srv.Cache().GetOrCompile(CompileRequest{Source: wireSrc, Threads: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Sessions().Create(e, true) // solo: private engine
	if err != nil {
		t.Fatal(err)
	}
	ref := e.Compiled.NewSimulator()

	step := func(cyc int) {
		v := uint64(cyc*7 + 1)
		if err := srv.Sessions().Do(sess.ID, func(s *Session) error {
			if err := s.Poke("in", v); err != nil {
				return err
			}
			s.Run(1)
			return nil
		}); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		if err := ref.PokeInput("in", v); err != nil {
			t.Fatal(err)
		}
		ref.Run(1)
		var got uint64
		if err := srv.Sessions().Do(sess.ID, func(s *Session) error {
			var e2 error
			got, e2 = s.PeekOutput("outA")
			return e2
		}); err != nil {
			t.Fatal(err)
		}
		want, err := ref.PeekOutput("outA")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cycle %d: outA = %d, linked reference %d", cyc, got, want)
		}
	}

	// Phase 1: likely interpreted (the build-behind races ahead of us, and
	// either way the output must match).
	for cyc := 0; cyc < 20; cyc++ {
		step(cyc)
	}
	// Phase 2: definitely native after the swap lands on the next op.
	waitNative(t, e, 3*time.Minute)
	for cyc := 20; cyc < 60; cyc++ {
		step(cyc)
	}
	if sess.Sim.Backend != repcut.BackendNative {
		t.Fatalf("session backend = %v after kernel ready, want native", sess.Sim.Backend)
	}

	snap := srv.Metrics()
	if !snap.Codegen.Enabled {
		t.Fatal("codegen metrics report the tier disabled")
	}
	if snap.Codegen.SessionsHotSwapped < 1 {
		t.Fatalf("sessions_hot_swapped = %d, want >= 1", snap.Codegen.SessionsHotSwapped)
	}
	if snap.Codegen.ArtifactHits+snap.Codegen.ArtifactMisses < 1 {
		t.Fatal("codegen metrics recorded no artifact traffic")
	}
	if snap.Codegen.BuildErrors != 0 {
		t.Fatalf("build_errors = %d, want 0", snap.Codegen.BuildErrors)
	}

	// A batched session never swaps (the batch engine has no native path)
	// but keeps serving correctly alongside the native solo session.
	bsess, err := srv.Sessions().Create(e, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Sessions().Do(bsess.ID, func(s *Session) error {
		if err := s.Poke("in", 5); err != nil {
			return err
		}
		s.Run(3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bsess.Batched() && bsess.Sim != nil {
		t.Fatal("batched session grew a private engine")
	}
}

// TestCodegenDisabledReason: a server asked for codegen on a platform
// without plugin support must degrade gracefully and say why.
func TestCodegenDisabledReason(t *testing.T) {
	if err := codegen.Supported(); err == nil {
		t.Skip("plugins supported here; disabled-reason path not reachable")
	}
	srv, _ := newTestServer(t, Config{Codegen: true, CodegenDir: t.TempDir()})
	snap := srv.Metrics()
	if snap.Codegen.Enabled {
		t.Fatal("tier enabled despite unsupported platform")
	}
	if snap.Codegen.Reason == "" {
		t.Fatal("no disabled reason recorded")
	}
}
