package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/sim"
)

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// CacheBytes is the compile cache's resident-byte budget
	// (default 256 MiB).
	CacheBytes int64
	// MaxSessions bounds live sessions; creates beyond it get 429
	// (default 1024).
	MaxSessions int
	// MaxCompiles bounds concurrently executing compiles; misses beyond
	// it get 503 (default NumCPU, min 2).
	MaxCompiles int
	// IdleTimeout reaps sessions with no activity for this long
	// (default 2m; negative disables reaping).
	IdleTimeout time.Duration
	// ReapInterval is how often the reaper scans (default IdleTimeout/4).
	ReapInterval time.Duration
	// MaxRunCycles caps a single step/run request (default 1e6).
	MaxRunCycles int
	// Workers bounds each compile's internal parallelism (0 = all cores).
	Workers int
	// BatchLanes is the lane width of the batched execution tier: sessions
	// simulating the same program share one sim.BatchEngine of this many
	// lanes (default 16; negative or 1 disables batching).
	BatchLanes int
	// Codegen enables the native build-behind tier: every compile-cache
	// miss asynchronously builds (or fetches from the artifact store) a
	// native kernel, and private-engine sessions hot-swap onto it on their
	// next operation. Silently degrades to interpreter-only when the
	// platform cannot build or load plugins (see /metrics codegen.reason).
	Codegen bool
	// CodegenDir is the native artifact store directory (default: a
	// per-user directory under the system temp dir, shared across runs).
	CodegenDir string
	// CodegenBytes is the artifact store's disk byte budget
	// (default 1 GiB).
	CodegenBytes int64
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 1024
	}
	if c.MaxCompiles == 0 {
		c.MaxCompiles = max(2, runtime.NumCPU())
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.ReapInterval == 0 {
		c.ReapInterval = c.IdleTimeout / 4
	}
	if c.ReapInterval <= 0 {
		c.ReapInterval = 30 * time.Second
	}
	if c.MaxRunCycles == 0 {
		c.MaxRunCycles = 1_000_000
	}
	if c.BatchLanes == 0 {
		c.BatchLanes = 16
	}
	if c.BatchLanes < 0 {
		c.BatchLanes = 1 // disabled
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// Server is the repcutd core: compile cache + session manager + HTTP
// surface. Create with New, mount Handler, stop with Shutdown.
type Server struct {
	cfg      Config
	cache    *Cache
	sessions *SessionManager
	m        *Metrics
	log      *slog.Logger
	mux      *http.ServeMux

	cg    *codegenTier // nil unless Config.Codegen is on and supported
	cgErr error        // why the tier is off when Config.Codegen was set

	// compileHook, when set (by the cluster layer), intercepts compile
	// requests before the local cache; clusterMetrics feeds the /metrics
	// cluster section. Both are set once at wiring time, before Handler is
	// served.
	compileHook    CompileHook
	clusterMetrics func() *ClusterMetrics

	reaperStop   chan struct{}
	reaperDone   chan struct{}
	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds a server and starts its idle-session reaper.
func New(cfg Config) *Server {
	cfg.defaults()
	m := NewMetrics()
	s := &Server{
		cfg:        cfg,
		m:          m,
		cache:      NewCache(cfg.CacheBytes, cfg.MaxCompiles, cfg.Workers, m),
		sessions:   NewSessionManager(cfg.MaxSessions, cfg.IdleTimeout, cfg.BatchLanes, m),
		log:        cfg.Logger,
		mux:        http.NewServeMux(),
		reaperStop: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	if cfg.Codegen {
		if tier, err := newCodegenTier(cfg.CodegenDir, cfg.CodegenBytes, m); err != nil {
			s.cgErr = err
			s.log.Warn("native codegen unavailable, running interpreter-only", "err", err)
		} else {
			s.cg = tier
			s.cache.cg = tier
		}
	}
	s.routes()
	go s.reaper()
	return s
}

// RoutedHeader marks a compile request that was already routed once by a
// cluster peer; the receiver must compile locally rather than route again,
// which bounds forwarding at one hop and prevents routing ping-pong when
// peers disagree about ring membership.
const RoutedHeader = "X-Repcut-Routed"

// CompileHook intercepts compile requests before the local cache. The
// cluster layer installs one that routes by consistent hash and fetches
// artifacts from peers; routed reports whether the request already took a
// routing hop (RoutedHeader present), in which case the hook must resolve
// locally.
type CompileHook func(req CompileRequest, routed bool) (*Entry, bool, error)

// SetCompileHook installs the compile interceptor. Call before serving.
func (s *Server) SetCompileHook(h CompileHook) { s.compileHook = h }

// SetClusterMetrics installs the /metrics cluster-section provider. Call
// before serving.
func (s *Server) SetClusterMetrics(f func() *ClusterMetrics) { s.clusterMetrics = f }

// Mount adds a handler to the server's mux (for the cluster layer's
// peer-to-peer endpoints), inside the request-logging wrapper. Call before
// serving.
func (s *Server) Mount(pattern string, h http.HandlerFunc) { s.mux.HandleFunc(pattern, h) }

// CodegenStore exposes the native artifact store, or nil when the codegen
// tier is off.
func (s *Server) CodegenStore() *codegen.Store {
	if s.cg == nil {
		return nil
	}
	return s.cg.store
}

// Cache exposes the compile cache (for tests and embedding).
func (s *Server) Cache() *Cache { return s.cache }

// Sessions exposes the session manager (for tests and embedding).
func (s *Server) Sessions() *SessionManager { return s.sessions }

// Metrics assembles the full observability snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.m.snapshot()
	snap.Cache.Entries = s.cache.Len()
	snap.Cache.Bytes = s.cache.BytesResident()
	snap.Cache.ByteBudget = s.cache.Budget()
	snap.Sessions.Live = s.sessions.Live()
	snap.Sessions.Capacity = s.sessions.Capacity()
	snap.Batch.Groups, snap.Batch.LanesOccupied, snap.Batch.LaneCapacity = s.sessions.BatchStats()
	snap.Batch.LaneWidth = s.cfg.BatchLanes
	if snap.Batch.LaneWidth > 1 && snap.Batch.Runs > 0 {
		snap.Batch.OccupancyRatio = snap.Batch.MeanLanesPerRun / float64(snap.Batch.LaneWidth)
	}
	if s.cg != nil {
		snap.Codegen.Enabled = true
		st := s.cg.store.Stats()
		snap.Codegen.StoreEntries = st.Entries
		snap.Codegen.StoreBytes = st.DiskBytes
		snap.Codegen.StoreBudget = st.DiskBudget
		snap.Codegen.StoreEvictions = st.Evictions
		snap.Codegen.StoreCorrupt = st.Corrupt
		snap.Codegen.KernelsLoaded = st.Loaded
	} else if s.cgErr != nil {
		snap.Codegen.Reason = s.cgErr.Error()
	}
	if s.clusterMetrics != nil {
		snap.Cluster = s.clusterMetrics()
	}
	return snap
}

// Shutdown drains gracefully: in-flight steps finish (bounded by ctx),
// all sessions close, and the reaper stops. The HTTP listener itself is
// the caller's to stop (http.Server.Shutdown) — do that first so no new
// requests arrive mid-drain. Idempotent; repeat calls return the first
// drain's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		close(s.reaperStop)
		<-s.reaperDone
		s.shutdownErr = s.sessions.Drain(ctx)
		if s.cg != nil {
			s.cg.close()
		}
	})
	return s.shutdownErr
}

// reaper periodically closes idle sessions.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case now := <-t.C:
			if n := s.sessions.Reap(now); n > 0 {
				s.log.Info("reaped idle sessions", "count", n)
			}
		}
	}
}

// routes mounts the API.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("POST /v1/sessions/restore", s.handleRestore)
	s.mux.HandleFunc("POST /v1/sessions/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /v1/sessions/{id}/poke", s.handlePoke)
	s.mux.HandleFunc("POST /v1/sessions/{id}/peek", s.handlePeek)
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	s.mux.HandleFunc("POST /v1/sessions/{id}/run", s.handleStep)
	s.mux.HandleFunc("POST /v1/sessions/{id}/vcd", s.handleStartVCD)
	s.mux.HandleFunc("GET /v1/sessions/{id}/vcd", s.handleGetVCD)
	s.mux.HandleFunc("POST /v1/sessions/{id}/close", s.handleClose)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
}

// Handler returns the full HTTP surface wrapped in request logging.
func (s *Server) Handler() http.Handler { return s.logRequests(s.mux) }

// statusWriter records the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// logRequests emits one structured log line per request.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"bytes", sw.bytes,
		)
	})
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors to HTTP statuses: overload conditions get
// 429/503 (the admission-control contract), lookups 404, fingerprint
// conflicts 409, everything else 400 — compile and simulation failures are
// caused by request content. Every 503 carries Retry-After so clients know
// the condition is transient; a migrated session's 503 additionally carries
// the forwarding address so clients can follow instead of retrying here.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	resp := ErrorResponse{Error: err.Error()}
	var mig *MigratedError
	switch {
	case errors.As(err, &mig):
		status = http.StatusServiceUnavailable
		resp.Peer, resp.SessionID = mig.Peer, mig.SessionID
	case errors.Is(err, ErrSessionLimit):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrCompileBusy), errors.Is(err, ErrDraining), errors.Is(err, ErrPeerStalled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNoSession), errors.Is(err, ErrSessionClosed):
		status = http.StatusNotFound
	case errors.Is(err, ErrSnapshotMismatch):
		status = http.StatusConflict
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

// decode reads a bounded JSON request body.
func decode(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("service: read body: %w", err)
	}
	if len(body) == 0 {
		return nil // empty body = all defaults
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.sessions.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.m.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	var (
		e   *Entry
		hit bool
		err error
	)
	if s.compileHook != nil {
		e, hit, err = s.compileHook(req, r.Header.Get(RoutedHeader) != "")
	} else {
		e, hit, err = s.cache.GetOrCompile(req)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Key:          e.Key,
		CacheHit:     hit,
		CompileMs:    float64(e.CompileTime.Microseconds()) / 1000,
		DesignReport: e.Report(),
	})
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	e, ok := s.cache.Lookup(req.Key)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: "service: unknown key (POST /v1/compile first)"})
		return
	}
	sess, err := s.sessions.Create(e, req.Solo)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{
		SessionID: sess.ID, Design: e.Name, Cycle: 0, Batched: sess.Batched(),
	})
}

// handleCheckpoint serializes a session's simulation state without
// disturbing it. The response restores on this server or any peer whose
// cache holds the same key.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var resp CheckpointResponse
	err := s.sessions.Do(r.PathValue("id"), func(sess *Session) error {
		snap, err := sess.Checkpoint()
		if err != nil {
			return err
		}
		hash, err := sess.StateHash()
		if err != nil {
			return err
		}
		resp = CheckpointResponse{
			SessionID:   sess.ID,
			Key:         sess.Key,
			Cycle:       snap.Cycles,
			Version:     snap.Version,
			Fingerprint: fmt.Sprintf("%016x", snap.Fingerprint),
			StateHash:   fmt.Sprintf("%016x", hash),
			State:       snap.Encode(),
		}
		if sess.entry != nil {
			resp.Design = sess.entry.Name
		}
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	s.m.sessionsCheckpointed.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handleRestore opens a session resuming from a checkpoint.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req RestoreSessionRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	snap, err := sim.DecodeSnapshot(req.State)
	if err != nil {
		writeErr(w, err)
		return
	}
	e, ok := s.cache.Lookup(req.Key)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: "service: unknown key (POST /v1/compile first)"})
		return
	}
	sess, err := s.sessions.Restore(e, snap, req.Solo)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{
		SessionID: sess.ID, Design: e.Name, Cycle: sess.Cycles(), Batched: sess.Batched(),
	})
}

func (s *Server) handlePoke(w http.ResponseWriter, r *http.Request) {
	var req PokeRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	err := s.sessions.Do(r.PathValue("id"), func(sess *Session) error {
		return sess.Poke(req.Name, req.Value)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ValueResponse{Name: req.Name, Value: req.Value})
}

func (s *Server) handlePeek(w http.ResponseWriter, r *http.Request) {
	var req PeekRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	var v uint64
	err := s.sessions.Do(r.PathValue("id"), func(sess *Session) error {
		if req.Reg {
			bv, err := sess.PeekReg(req.Name)
			if err != nil {
				return err
			}
			if bv.Width > 64 {
				return fmt.Errorf("service: register %q is %d bits wide (>64)", req.Name, bv.Width)
			}
			v = bv.Uint64()
			return nil
		}
		var err error
		v, err = sess.PeekOutput(req.Name)
		return err
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ValueResponse{Name: req.Name, Value: v})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req StepRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	n := req.Cycles
	if n <= 0 {
		n = 1
	}
	if n > s.cfg.MaxRunCycles {
		writeErr(w, fmt.Errorf("service: cycles=%d exceeds the per-request cycle cap %d", n, s.cfg.MaxRunCycles))
		return
	}
	var cycles uint64
	err := s.sessions.Do(r.PathValue("id"), func(sess *Session) error {
		start := time.Now()
		cycles = sess.Run(n)
		s.m.stepLat.Observe(time.Since(start))
		s.m.stepsTotal.Add(1)
		s.m.cyclesTotal.Add(int64(n))
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StepResponse{Cycle: cycles})
}

// handleStartVCD begins waveform capture; a batched session spills to a
// private engine first, since the VCD writer samples cycle by cycle.
func (s *Server) handleStartVCD(w http.ResponseWriter, r *http.Request) {
	var resp SessionResponse
	err := s.sessions.Do(r.PathValue("id"), func(sess *Session) error {
		if err := sess.StartVCD(s.sessions); err != nil {
			return err
		}
		resp = SessionResponse{
			SessionID: sess.ID, Cycle: sess.Cycles(), Batched: sess.Batched(),
		}
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGetVCD streams the capture accumulated so far.
func (s *Server) handleGetVCD(w http.ResponseWriter, r *http.Request) {
	var dump []byte
	err := s.sessions.Do(r.PathValue("id"), func(sess *Session) error {
		var e2 error
		dump, e2 = sess.VCD()
		return e2
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(dump)
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Close(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StepResponse{Cycle: sess.Cycles()})
}
