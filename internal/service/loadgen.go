package service

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/report"
)

// LoadgenConfig shapes the synthetic workload: W concurrent clients, each
// looping compile→session→(poke,run,peek)×k→close over a rotating mix of
// designs until the duration expires. One compile call per session means
// the steady-state cache hit rate approaches 1 − designs/sessions.
type LoadgenConfig struct {
	// Designs is the workload mix (at least one).
	Designs []CompileRequest
	// Clients is the number of concurrent load workers (default 8).
	Clients int
	// Duration is how long to generate load (default 2s).
	Duration time.Duration
	// CyclesPerSession is how many cycles each session simulates,
	// split over StepsPerSession run calls (defaults 200 over 4 runs).
	CyclesPerSession int
	StepsPerSession  int
	// Seed makes each client's poke values deterministic (default 1).
	Seed int64
}

func (c *LoadgenConfig) defaults() {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.CyclesPerSession == 0 {
		c.CyclesPerSession = 200
	}
	if c.StepsPerSession == 0 {
		c.StepsPerSession = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DesignLoad is the per-design slice of a load run.
type DesignLoad struct {
	Design   string
	Sessions int64
	Cycles   int64
	// Partition is the design's partition summary from its first
	// successful compile (nil for serial designs): replication cost, cut
	// size, imbalance, and dereplication counts.
	Partition *PartitionSummary
}

// LoadgenResult summarizes a load run.
type LoadgenResult struct {
	Elapsed   time.Duration
	Sessions  int64
	Cycles    int64
	Steps     int64
	Errors    int64 // non-overload failures
	Overloads int64 // 429/503 responses (shed load, not errors)
	PerDesign []DesignLoad
	Metrics   *MetricsSnapshot // server metrics fetched after the run
}

// SessionsPerSec is the completed-session throughput.
func (r *LoadgenResult) SessionsPerSec() float64 {
	return float64(r.Sessions) / r.Elapsed.Seconds()
}

// CyclesPerSec is the aggregate simulated-cycle throughput.
func (r *LoadgenResult) CyclesPerSec() float64 {
	return float64(r.Cycles) / r.Elapsed.Seconds()
}

// Table renders the run as the standard results table (one row per
// design plus a total row).
func (r *LoadgenResult) Table() *report.Table {
	t := report.NewTable("Service throughput (repcutd load generator)",
		"design", "sessions", "cycles", "sessions/s", "cycles/s", "KHz")
	row := func(name string, sessions, cycles int64) {
		secs := r.Elapsed.Seconds()
		t.Row(name, sessions, cycles,
			report.F1(float64(sessions)/secs),
			report.F1(float64(cycles)/secs),
			report.F1(float64(cycles)/secs/1000))
	}
	for _, d := range r.PerDesign {
		row(d.Design, d.Sessions, d.Cycles)
	}
	row("TOTAL", r.Sessions, r.Cycles)
	return t
}

// Summary renders the headline numbers plus the server-side metrics that
// the acceptance gate cares about (cache hit rate, latency quantiles).
func (r *LoadgenResult) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "elapsed: %.2fs   sessions: %d (%.1f/s)   cycles: %d (%.0f/s)   overloads: %d   errors: %d\n",
		r.Elapsed.Seconds(), r.Sessions, r.SessionsPerSec(), r.Cycles, r.CyclesPerSec(), r.Overloads, r.Errors)
	for _, d := range r.PerDesign {
		if p := d.Partition; p != nil {
			fmt.Fprintf(&sb, "partition %s: repl %s   cut %d   imbalance %.3f   derep %d groups / %d regs\n",
				d.Design, report.Pct(p.ReplicationCost), p.CutCost, p.ImbalanceIncl, p.DerepGroups, p.DerepRegs)
		}
	}
	if m := r.Metrics; m != nil {
		fmt.Fprintf(&sb, "cache: hit rate %s (%d hits / %d misses, %d evictions, %d entries, %d bytes resident)\n",
			report.Pct(m.Cache.HitRate), m.Cache.Hits, m.Cache.Misses,
			m.Cache.Evictions, m.Cache.Entries, m.Cache.Bytes)
		fmt.Fprintf(&sb, "compile latency: p50 %.3gms p99 %.3gms (n=%d)   step latency: p50 %.3gms p99 %.3gms (n=%d)\n",
			m.Compile.Latency.P50Ms, m.Compile.Latency.P99Ms, m.Compile.Latency.Count,
			m.Sim.StepLatency.P50Ms, m.Sim.StepLatency.P99Ms, m.Sim.StepLatency.Count)
		b := m.Batch
		if b.LaneWidth > 1 {
			fmt.Fprintf(&sb, "batch: %d lanes/group   sessions batched/solo/spilled: %d/%d/%d   runs: %d (%.2f lanes/run, occupancy %s)   batched cycles: %d (%.0f/s)\n",
				b.LaneWidth, b.SessionsBatched, b.SessionsSolo, b.SessionsSpilled,
				b.Runs, b.MeanLanesPerRun, report.Pct(b.OccupancyRatio),
				b.BatchedCycles, b.BatchedCPS)
		} else {
			fmt.Fprintf(&sb, "batch: disabled   sessions solo: %d\n", b.SessionsSolo)
		}
		if cg := m.Codegen; cg.Enabled {
			fmt.Fprintf(&sb, "codegen: artifacts %d hit / %d built (%d errors)   build p50 %.3gms p99 %.3gms   sessions hot-swapped: %d   store: %d entries, %d bytes\n",
				cg.ArtifactHits, cg.ArtifactMisses, cg.BuildErrors,
				cg.BuildLatency.P50Ms, cg.BuildLatency.P99Ms,
				cg.SessionsHotSwapped, cg.StoreEntries, cg.StoreBytes)
		} else if cg.Reason != "" {
			fmt.Fprintf(&sb, "codegen: disabled (%s)\n", cg.Reason)
		}
	}
	return sb.String()
}

// RunLoadgen hammers the server at baseURL with the configured mixed
// workload. Overload responses (429/503) are counted and retried with the
// next iteration — shedding is the server behaving as designed — while
// any other failure counts as an error.
func RunLoadgen(baseURL string, cfg LoadgenConfig) (*LoadgenResult, error) {
	cfg.defaults()
	if len(cfg.Designs) == 0 {
		return nil, fmt.Errorf("service: loadgen needs at least one design")
	}
	client := NewClient(baseURL)
	if err := client.Health(); err != nil {
		return nil, fmt.Errorf("service: server not healthy: %w", err)
	}

	var (
		sessions  atomic.Int64
		cycles    atomic.Int64
		steps     atomic.Int64
		errorsN   atomic.Int64
		overloads atomic.Int64
	)
	perDesign := make([]struct {
		sessions, cycles atomic.Int64
		part             atomic.Pointer[PartitionSummary]
	}, len(cfg.Designs))

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(par.Derive(cfg.Seed, int64(w))))
			for it := 0; time.Now().Before(deadline); it++ {
				di := (w + it) % len(cfg.Designs)
				if err := oneSession(client, cfg, rng, cfg.Designs[di], func(c int64) {
					cycles.Add(c)
					steps.Add(1)
					perDesign[di].cycles.Add(c)
				}, func(cr *CompileResponse) {
					if cr.Partition != nil {
						perDesign[di].part.CompareAndSwap(nil, cr.Partition)
					}
				}); err != nil {
					if st := StatusOf(err); st == 429 || st == 503 {
						overloads.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					errorsN.Add(1)
					continue
				}
				sessions.Add(1)
				perDesign[di].sessions.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadgenResult{
		Elapsed:   elapsed,
		Sessions:  sessions.Load(),
		Cycles:    cycles.Load(),
		Steps:     steps.Load(),
		Errors:    errorsN.Load(),
		Overloads: overloads.Load(),
	}
	for i, d := range cfg.Designs {
		name := d.Design
		if name == "" {
			name = "source"
		}
		res.PerDesign = append(res.PerDesign, DesignLoad{
			Design:    fmt.Sprintf("%s@%dt", name, d.normalize().Threads),
			Sessions:  perDesign[i].sessions.Load(),
			Cycles:    perDesign[i].cycles.Load(),
			Partition: perDesign[i].part.Load(),
		})
	}
	if m, err := client.Metrics(); err == nil {
		res.Metrics = m
	}
	return res, nil
}

// oneSession runs one compile→simulate→close workload unit.
func oneSession(client *Client, cfg LoadgenConfig, rng *rand.Rand, d CompileRequest, onRun func(int64), onCompile func(*CompileResponse)) error {
	cr, err := client.Compile(d)
	if err != nil {
		return err
	}
	onCompile(cr)
	sess, err := client.NewSession(cr.Key)
	if err != nil {
		return err
	}
	// Always try to close; a failed step must not leak the session.
	defer sess.Close()

	per := cfg.CyclesPerSession / cfg.StepsPerSession
	if per < 1 {
		per = 1
	}
	for s := 0; s < cfg.StepsPerSession; s++ {
		if err := pokeRandomInput(sess, cr, rng); err != nil {
			return err
		}
		if _, err := sess.Run(per); err != nil {
			return err
		}
		onRun(int64(per))
		if err := peekFirstOutput(sess, cr); err != nil {
			return err
		}
	}
	return nil
}

// firstNarrow picks the first ≤64-bit port from a table, "" if none.
func firstNarrow(ports []PortInfo) string {
	for _, p := range ports {
		if !p.Wide {
			return p.Name
		}
	}
	return ""
}

// pokeRandomInput pokes a random narrow value into the design's first
// narrow input port, when it has one.
func pokeRandomInput(sess *SessionHandle, cr *CompileResponse, rng *rand.Rand) error {
	name := firstNarrow(cr.Inputs)
	if name == "" {
		return nil
	}
	return sess.Poke(name, rng.Uint64()&0xffff)
}

// peekFirstOutput reads back one output to exercise the peek path.
func peekFirstOutput(sess *SessionHandle, cr *CompileResponse) error {
	name := firstNarrow(cr.Outputs)
	if name == "" {
		return nil
	}
	_, err := sess.Peek(name)
	return err
}
