package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Checkpoint/restore and drain-time migration. A session's simulation state
// serializes to a sim.Snapshot (the flat linked state slice + memories +
// cycle count) that restores into a fresh engine — on this server or on any
// peer holding the same compiled fingerprint — with zero simulated-cycle
// loss. The cluster layer builds live migration on top: a draining node
// checkpoints every session, ships each snapshot to a peer, and leaves a
// forwarding address behind so clients can follow.

var (
	// ErrSnapshotMismatch is returned when a snapshot's program fingerprint
	// does not match the design it is being restored into (HTTP 409).
	ErrSnapshotMismatch = errors.New("service: snapshot does not match design fingerprint")
	// ErrPeerStalled is returned when a cluster peer holding an artifact
	// stopped responding inside the fetch timeout; the request is shed with
	// 503 + Retry-After rather than held open (the cluster layer wraps it).
	ErrPeerStalled = errors.New("service: peer stalled serving artifact")
)

// Migrated is a forwarding address left behind when a session moves to a
// peer during drain.
type Migrated struct {
	Peer      string // peer base address now hosting the session
	SessionID string // the session's ID on that peer
}

// MigratedError reports that a session no longer lives here but was
// migrated to a peer. The server maps it to 503 + Retry-After with the
// forwarding address in the body, so clients can follow.
type MigratedError struct {
	Peer      string
	SessionID string
}

func (e *MigratedError) Error() string {
	return fmt.Sprintf("service: session migrated to %s as %s", e.Peer, e.SessionID)
}

// Checkpoint serializes the session's full simulation state. Must be called
// inside SessionManager.Do (the session mutex serializes it against other
// operations); non-destructive — the session keeps running afterwards.
func (s *Session) Checkpoint() (*sim.Snapshot, error) {
	if g := s.group; g != nil {
		var snap *sim.Snapshot
		err := g.withEngine(func(be *sim.BatchEngine) error {
			var e2 error
			snap, e2 = be.SnapshotLane(s.lane)
			return e2
		})
		return snap, err
	}
	return s.Sim.Engine.Snapshot()
}

// StateHash returns the session's architectural state hash (name-sorted
// registers + outputs + memories — identical across backends and peers).
// Must be called inside SessionManager.Do.
func (s *Session) StateHash() (uint64, error) {
	if g := s.group; g != nil {
		var h uint64
		err := g.withEngine(func(be *sim.BatchEngine) error {
			var e2 error
			h, e2 = be.StateHashLane(s.lane)
			return e2
		})
		return h, err
	}
	return s.Sim.Engine.StateHash(), nil
}

// Restore opens a session over a cached entry and loads a snapshot into it,
// resuming at the snapshot's cycle count. Placement follows Create: a batch
// lane unless solo is set or the program is ineligible (the lane restore
// falls back to a private engine on failure).
func (sm *SessionManager) Restore(e *Entry, snap *sim.Snapshot, solo bool) (*Session, error) {
	if snap.Fingerprint != e.Fingerprint {
		return nil, fmt.Errorf("%w: snapshot %016x, design %016x",
			ErrSnapshotMismatch, snap.Fingerprint, e.Fingerprint)
	}
	if sm.draining.Load() {
		return nil, ErrDraining
	}
	if !sm.sem.TryAcquire() {
		sm.m.sessionsRejected.Add(1)
		return nil, ErrSessionLimit
	}
	s := &Session{
		ID:     fmt.Sprintf("s%08x", sm.seq.Add(1)),
		Key:    e.Key,
		report: e.Compiled.Report,
		com:    e.Compiled,
		entry:  e,
	}
	if !solo {
		if g, lane, ok := sm.batch.alloc(e); ok {
			err := g.withEngine(func(be *sim.BatchEngine) error {
				return be.RestoreLane(lane, snap)
			})
			if err == nil {
				s.group, s.lane = g, lane
			} else {
				g.pool.free(g, lane)
			}
		}
	}
	if s.group == nil {
		simr := e.Compiled.NewSimulator()
		if err := simr.Engine.RestoreSnapshot(snap); err != nil {
			sm.sem.Release()
			return nil, err
		}
		s.Sim = simr
		sm.m.sessionsSolo.Add(1)
	} else {
		sm.m.sessionsBatched.Add(1)
	}
	s.cycle = snap.Cycles
	s.touch(time.Now())
	sm.mu.Lock()
	if sm.draining.Load() { // re-check under the table lock
		sm.mu.Unlock()
		s.release()
		sm.sem.Release()
		return nil, ErrDraining
	}
	sm.byID[s.ID] = s
	sm.mu.Unlock()
	sm.m.sessionsCreated.Add(1)
	sm.m.sessionsRestored.Add(1)
	return s, nil
}

// MarkMigrated records a forwarding address for a session that moved to a
// peer; subsequent operations on the old ID get a MigratedError instead of
// a bare ErrDraining/ErrNoSession.
func (sm *SessionManager) MarkMigrated(id, peer, newID string) {
	sm.mu.Lock()
	sm.migrated[id] = Migrated{Peer: peer, SessionID: newID}
	sm.mu.Unlock()
}

// migratedErr returns the forwarding error for id, or nil. Caller holds
// sm.mu.
func (sm *SessionManager) migratedErr(id string) error {
	if mig, ok := sm.migrated[id]; ok {
		return &MigratedError{Peer: mig.Peer, SessionID: mig.SessionID}
	}
	return nil
}

// DrainMigrate drains like Drain, but instead of discarding session state
// it checkpoints every remaining session and offers each snapshot to the
// migrate callback, which ships it to a peer and returns the forwarding
// address. Sessions that migrate leave a MigratedError behind for their
// clients; sessions the callback cannot place are closed like a plain
// drain. Returns how many sessions moved and the first error encountered
// (context expiry or a failed migration) — migration of the remaining
// sessions continues past individual failures.
func (sm *SessionManager) DrainMigrate(ctx context.Context, migrate func(s *Session, snap *sim.Snapshot) (peer, newID string, err error)) (int, error) {
	sm.draining.Store(true)
	done := make(chan struct{})
	go func() {
		sm.ops.Wait()
		close(done)
	}()
	var firstErr error
	select {
	case <-done:
	case <-ctx.Done():
		firstErr = ctx.Err()
	}
	sm.mu.Lock()
	rest := make([]*Session, 0, len(sm.byID))
	for id, s := range sm.byID {
		rest = append(rest, s)
		delete(sm.byID, id)
	}
	sm.mu.Unlock()
	moved := 0
	for _, s := range rest {
		s.mu.Lock()
		var snap *sim.Snapshot
		var err error
		if !s.closed {
			snap, err = s.Checkpoint()
		}
		s.mu.Unlock()
		switch {
		case err != nil:
			if firstErr == nil {
				firstErr = fmt.Errorf("service: checkpoint %s for migration: %w", s.ID, err)
			}
		case snap != nil:
			sm.m.sessionsCheckpointed.Add(1)
			peer, newID, merr := migrate(s, snap)
			if merr != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("service: migrate %s: %w", s.ID, merr)
				}
				break
			}
			sm.MarkMigrated(s.ID, peer, newID)
			moved++
		}
		sm.finish(s)
		sm.m.sessionsClosed.Add(1)
	}
	return moved, firstErr
}
