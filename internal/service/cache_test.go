package service

import (
	"sync"
	"testing"

	repcut "repro"
	"repro/internal/designs"
)

// smallReq is a fast-compiling request for cache tests; vary seed to get
// distinct content addresses over the same design.
func smallReq(seed int64) CompileRequest {
	return CompileRequest{Design: "RocketChip-1C", Scale: 0.25, Threads: 2, Seed: seed}
}

// offlineFingerprint compiles the request directly (no cache, no server)
// and returns the program fingerprint — the ground truth the cached
// artifact must match.
func offlineFingerprint(t *testing.T, req CompileRequest) uint64 {
	t.Helper()
	req = req.normalize()
	cfg, err := designs.ParseName(req.Design)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scale = req.Scale
	d, err := repcut.Elaborate(designs.BuildCircuit(cfg))
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.CompileProgram(req.Options(1))
	if err != nil {
		t.Fatal(err)
	}
	return c.Program.Fingerprint()
}

func TestKeyCanonicalization(t *testing.T) {
	// Spelling a default explicitly must not change the address.
	a := CompileRequest{Design: "RocketChip-1C", Threads: 2}
	b := CompileRequest{Design: "RocketChip-1C", Threads: 2, Seed: 1, OptLevel: 2, Scale: 1}
	if a.Key() != b.Key() {
		t.Errorf("defaulted and explicit requests hash differently:\n%s\n%s", a.Key(), b.Key())
	}
	// Every program-changing option must change the address.
	variants := []CompileRequest{
		{Design: "RocketChip-1C", Threads: 4},
		{Design: "RocketChip-1C", Threads: 2, Seed: 7},
		{Design: "RocketChip-1C", Threads: 2, OptLevel: 1},
		{Design: "RocketChip-1C", Threads: 2, Unweighted: true},
		{Design: "RocketChip-1C", Threads: 2, Scale: 0.5},
		{Design: "SmallBOOM-1C", Threads: 2},
		{Source: "circuit X ...", Threads: 2},
	}
	seen := map[string]int{a.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, j, v)
		}
		seen[k] = i
	}
}

func TestSingleflightConcurrentCompiles(t *testing.T) {
	m := NewMetrics()
	c := NewCache(1<<30, 4, 1, m)
	req := smallReq(1)

	const N = 16
	entries := make([]*Entry, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.GetOrCompile(req)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()

	// Exactly one execution: one miss, N-1 hits, one resident entry, and
	// every caller got the same artifact.
	if got := m.cacheMisses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1 (singleflight must dedup)", got)
	}
	if got := m.cacheHits.Load(); got != N-1 {
		t.Errorf("hits = %d, want %d", got, N-1)
	}
	if got := c.Len(); got != 1 {
		t.Errorf("cache entries = %d, want 1", got)
	}
	for i := 1; i < N; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
	// The cached program is bit-identical to an offline compile.
	if want := offlineFingerprint(t, req); entries[0].Fingerprint != want {
		t.Errorf("cached fingerprint %016x != offline %016x", entries[0].Fingerprint, want)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	// Learn the per-entry charge, then budget for ~2.5 entries.
	probe := NewCache(1<<30, 2, 1, NewMetrics())
	e0, _, err := probe.GetOrCompile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if e0.Bytes <= 0 {
		t.Fatalf("entry bytes = %d, want > 0", e0.Bytes)
	}

	m := NewMetrics()
	c := NewCache(e0.Bytes*5/2, 2, 1, m)
	for seed := int64(1); seed <= 3; seed++ {
		if _, _, err := c.GetOrCompile(smallReq(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.cacheEvictions.Load(); got == 0 {
		t.Error("no evictions under a 2.5-entry budget after 3 inserts")
	}
	if got, budget := c.BytesResident(), c.Budget(); got > budget {
		t.Errorf("resident bytes %d exceed budget %d", got, budget)
	}
	// LRU order: seed 1 (oldest, untouched) is gone, seed 3 resident.
	if _, ok := c.Lookup(smallReq(1).Key()); ok {
		t.Error("LRU entry (seed 1) still resident after eviction")
	}
	if _, ok := c.Lookup(smallReq(3).Key()); !ok {
		t.Error("most recent entry (seed 3) was evicted")
	}

	// A hit refreshes recency: touch seed 2, insert seed 4, and seed 2
	// must survive while seed 3 goes.
	if _, _, err := c.GetOrCompile(smallReq(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrCompile(smallReq(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(smallReq(2).Key()); !ok {
		t.Error("recently-hit entry (seed 2) was evicted")
	}
	if _, ok := c.Lookup(smallReq(3).Key()); ok {
		t.Error("stale entry (seed 3) survived over the recently-hit one")
	}
}

func TestOverBudgetEntryStillServes(t *testing.T) {
	// A budget smaller than one program must still admit (and keep) the
	// most recent entry rather than thrash to zero.
	c := NewCache(1, 2, 1, NewMetrics())
	e, _, err := c.GetOrCompile(smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(e.Key); !ok {
		t.Error("sole over-budget entry was evicted")
	}
}

func TestCompileAdmissionSheds(t *testing.T) {
	m := NewMetrics()
	c := NewCache(1<<30, 1, 1, m)
	// Occupy the only compile slot, then a miss must shed with
	// ErrCompileBusy instead of queueing.
	if !c.sem.TryAcquire() {
		t.Fatal("could not occupy the compile slot")
	}
	_, _, err := c.GetOrCompile(smallReq(1))
	if err != ErrCompileBusy {
		t.Fatalf("err = %v, want ErrCompileBusy", err)
	}
	if got := m.compileRejected.Load(); got != 1 {
		t.Errorf("compileRejected = %d, want 1", got)
	}
	c.sem.Release()
	// With the slot free the same request compiles fine.
	if _, _, err := c.GetOrCompile(smallReq(1)); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrorPropagatesToJoiners(t *testing.T) {
	c := NewCache(1<<30, 2, 1, NewMetrics())
	bad := CompileRequest{Design: "NoSuchDesign-1C", Threads: 2}
	const N = 4
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompile(bad)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("caller %d got nil error for an unknown design", i)
		}
	}
	if got := c.Len(); got != 0 {
		t.Errorf("failed compile left %d cache entries", got)
	}
	// The failure is not sticky: a later good request with the same key
	// shape recompiles.
	if _, _, err := c.GetOrCompile(smallReq(1)); err != nil {
		t.Fatal(err)
	}
}
