package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	repcut "repro"
	"repro/internal/par"
)

// Session lifecycle errors, mapped to HTTP statuses by the server.
var (
	ErrSessionLimit  = errors.New("service: session limit reached")
	ErrDraining      = errors.New("service: server is draining")
	ErrNoSession     = errors.New("service: no such session")
	ErrSessionClosed = errors.New("service: session is closed")
)

// Session is one stateful simulation: a private sim.Engine over a shared
// cached program. Operations on a session are serialized by its mutex;
// different sessions run fully concurrently (engines share only the
// read-only Program).
type Session struct {
	ID  string
	Key string
	Sim *repcut.Simulator

	mu       sync.Mutex
	lastUsed atomic.Int64 // unix nanos
	closed   bool
}

// touch records activity for the idle reaper.
func (s *Session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// SessionManager owns the live-session table: bounded admission
// (par.Sem), idle reaping, and a graceful drain that lets in-flight
// operations finish before the last session is torn down.
type SessionManager struct {
	sem  *par.Sem
	idle time.Duration
	m    *Metrics

	mu   sync.Mutex
	byID map[string]*Session
	seq  atomic.Int64

	draining atomic.Bool
	ops      sync.WaitGroup
}

// NewSessionManager creates a manager admitting at most maxLive concurrent
// sessions and reaping sessions idle longer than idleTimeout (0 disables
// reaping).
func NewSessionManager(maxLive int, idleTimeout time.Duration, m *Metrics) *SessionManager {
	if m == nil {
		m = NewMetrics()
	}
	return &SessionManager{
		sem:  par.NewSem(maxLive),
		idle: idleTimeout,
		m:    m,
		byID: make(map[string]*Session),
	}
}

// Live returns the number of live sessions.
func (sm *SessionManager) Live() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.byID)
}

// Capacity returns the admission limit.
func (sm *SessionManager) Capacity() int { return sm.sem.Cap() }

// Create opens a session over a cached entry. ErrSessionLimit when the
// admission bound is hit (HTTP 429), ErrDraining during shutdown (503).
func (sm *SessionManager) Create(e *Entry) (*Session, error) {
	if sm.draining.Load() {
		return nil, ErrDraining
	}
	if !sm.sem.TryAcquire() {
		sm.m.sessionsRejected.Add(1)
		return nil, ErrSessionLimit
	}
	s := &Session{
		ID:  fmt.Sprintf("s%08x", sm.seq.Add(1)),
		Key: e.Key,
		Sim: e.Compiled.NewSimulator(),
	}
	s.touch(time.Now())
	sm.mu.Lock()
	if sm.draining.Load() { // re-check under the table lock
		sm.mu.Unlock()
		sm.sem.Release()
		return nil, ErrDraining
	}
	sm.byID[s.ID] = s
	sm.mu.Unlock()
	sm.m.sessionsCreated.Add(1)
	return s, nil
}

// Do runs fn against a live session with the session mutex held, keeping
// the operation visible to graceful drain. The idle clock is touched on
// entry and exit, so a long Run(n) doesn't get its session reaped from
// under it.
func (sm *SessionManager) Do(id string, fn func(*Session) error) error {
	sm.mu.Lock()
	if sm.draining.Load() {
		sm.mu.Unlock()
		return ErrDraining
	}
	s, ok := sm.byID[id]
	if !ok {
		sm.mu.Unlock()
		return ErrNoSession
	}
	sm.ops.Add(1)
	sm.mu.Unlock()
	defer sm.ops.Done()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.touch(time.Now())
	err := fn(s)
	s.touch(time.Now())
	return err
}

// Close tears down one session. Idempotent at the HTTP layer: a second
// close reports ErrNoSession.
func (sm *SessionManager) Close(id string) (*Session, error) {
	sm.mu.Lock()
	s, ok := sm.byID[id]
	if ok {
		delete(sm.byID, id)
	}
	sm.mu.Unlock()
	if !ok {
		return nil, ErrNoSession
	}
	sm.finish(s)
	sm.m.sessionsClosed.Add(1)
	return s, nil
}

// finish marks a removed session closed and returns its admission slot.
// It waits for any in-flight operation by taking the session mutex.
func (sm *SessionManager) finish(s *Session) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		sm.sem.Release()
	}
	s.mu.Unlock()
}

// Reap closes every session idle longer than the idle timeout and returns
// how many it closed. The server's reaper loop calls it periodically;
// tests call it directly with a synthetic clock.
func (sm *SessionManager) Reap(now time.Time) int {
	if sm.idle <= 0 {
		return 0
	}
	cutoff := now.Add(-sm.idle).UnixNano()
	sm.mu.Lock()
	var stale []*Session
	for id, s := range sm.byID {
		if s.lastUsed.Load() < cutoff {
			stale = append(stale, s)
			delete(sm.byID, id)
		}
	}
	sm.mu.Unlock()
	for _, s := range stale {
		sm.finish(s)
		sm.m.sessionsReaped.Add(1)
	}
	return len(stale)
}

// Drain stops admitting work and waits — up to the context deadline — for
// in-flight operations to finish, then closes every remaining session.
// Steps already executing complete; new creates and ops get ErrDraining.
func (sm *SessionManager) Drain(ctx context.Context) error {
	sm.draining.Store(true)
	done := make(chan struct{})
	go func() {
		sm.ops.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	sm.mu.Lock()
	rest := make([]*Session, 0, len(sm.byID))
	for id, s := range sm.byID {
		rest = append(rest, s)
		delete(sm.byID, id)
	}
	sm.mu.Unlock()
	for _, s := range rest {
		sm.finish(s)
		sm.m.sessionsClosed.Add(1)
	}
	return err
}
