package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	repcut "repro"
	"repro/internal/bitvec"
	"repro/internal/par"
	"repro/internal/sim"
)

// Session lifecycle errors, mapped to HTTP statuses by the server.
var (
	ErrSessionLimit  = errors.New("service: session limit reached")
	ErrDraining      = errors.New("service: server is draining")
	ErrNoSession     = errors.New("service: no such session")
	ErrSessionClosed = errors.New("service: session is closed")
	ErrNoVCD         = errors.New("service: session has no VCD capture (POST .../vcd first)")
)

// Session is one stateful simulation. It runs on one of two backends:
// a lane of a shared batch group (the default when another live session
// simulates the same program), or a private sim.Engine (solo creates,
// ineligible programs, and sessions that spilled for VCD capture).
// Operations on a session are serialized by its mutex; different sessions
// run fully concurrently.
type Session struct {
	ID  string
	Key string

	// Sim is the private engine; nil while the session rides a batch lane.
	Sim *repcut.Simulator

	group *batchGroup // non-nil iff batched
	lane  int

	vcd    *vcdCapture // non-nil while capturing (implies private engine)
	cycle  uint64      // cycle count after the last operation
	report *repcut.PartitionReport
	com    *repcut.Compiled
	entry  *Entry // cache entry the session was created from (kernel source)

	mu       sync.Mutex
	lastUsed atomic.Int64 // unix nanos
	closed   bool
}

// vcdCapture accumulates a waveform dump for one session.
type vcdCapture struct {
	buf bytes.Buffer
	w   *sim.VCDWriter
}

// Batched reports whether the session currently occupies a batch lane.
func (s *Session) Batched() bool { return s.group != nil }

// Lane returns the session's batch lane (meaningful only when Batched).
func (s *Session) Lane() int { return s.lane }

// Cycles returns the session's cycle count as of its last operation.
func (s *Session) Cycles() uint64 { return s.cycle }

// Poke sets a narrow input port. Batched lanes poke their SoA column; the
// write waits out any in-flight group round.
func (s *Session) Poke(name string, v uint64) error {
	if g := s.group; g != nil {
		return g.withEngine(func(be *sim.BatchEngine) error {
			return be.Poke(s.lane, name, v)
		})
	}
	return s.Sim.PokeInput(name, v)
}

// PeekOutput reads a narrow output port.
func (s *Session) PeekOutput(name string) (uint64, error) {
	if g := s.group; g != nil {
		var v uint64
		err := g.withEngine(func(be *sim.BatchEngine) error {
			var err error
			v, err = be.Peek(s.lane, name)
			return err
		})
		return v, err
	}
	return s.Sim.PeekOutput(name)
}

// PeekReg reads a register, narrow or wide.
func (s *Session) PeekReg(name string) (bv bitvec.Vec, err error) {
	if g := s.group; g != nil {
		err = g.withEngine(func(be *sim.BatchEngine) error {
			var e2 error
			bv, e2 = be.PeekReg(s.lane, name)
			return e2
		})
		return bv, err
	}
	return s.Sim.PeekReg(name)
}

// Run advances the session n cycles and returns its new cycle count.
// Batched lanes go through the group's frontier protocol; a session with
// an active VCD capture samples every cycle.
func (s *Session) Run(n int) uint64 {
	switch {
	case s.group != nil:
		s.cycle = s.group.step(s.lane, n)
	case s.vcd != nil:
		_ = s.vcd.w.RunSampled(n)
		s.cycle = s.Sim.Cycles()
	default:
		s.Sim.Run(n)
		s.cycle = s.Sim.Cycles()
	}
	return s.cycle
}

// StartVCD begins waveform capture, spilling the session off its batch
// lane first (the writer samples a private engine cycle by cycle).
// Idempotent: a second start keeps the existing capture.
func (s *Session) StartVCD(sm *SessionManager) error {
	if s.vcd != nil {
		return nil
	}
	if err := s.spill(sm); err != nil {
		return err
	}
	cap := &vcdCapture{}
	cap.w = sim.NewVCDWriter(&cap.buf, s.Sim.Engine)
	if err := cap.w.Sample(); err != nil { // header + initial values
		return err
	}
	s.vcd = cap
	return nil
}

// VCD returns the capture accumulated so far.
func (s *Session) VCD() ([]byte, error) {
	if s.vcd == nil {
		return nil, ErrNoVCD
	}
	return s.vcd.buf.Bytes(), nil
}

// spill migrates a batched session onto a private engine carrying the
// lane's exact architectural state, then releases the lane.
func (s *Session) spill(sm *SessionManager) error {
	g := s.group
	if g == nil {
		return nil
	}
	var eng *sim.Engine
	err := g.withEngine(func(be *sim.BatchEngine) error {
		var e2 error
		eng, e2 = be.ExtractLane(s.lane)
		return e2
	})
	if err != nil {
		return err
	}
	g.pool.free(g, s.lane)
	s.group = nil
	s.Sim = &repcut.Simulator{Engine: eng, Report: s.report}
	sm.m.sessionsSpilled.Add(1)
	return nil
}

// maybeHotSwap installs the entry's native kernel on the session's
// private engine once the codegen tier's build-behind has delivered it.
// Called with the session mutex held on every operation; until the kernel
// lands this is a nil pointer load. Batch lanes never swap (the batch
// engine has no native path) — a batched session picks the kernel up if
// it later spills to a private engine. The swap is state-preserving: the
// kernel indexes the same unified state slice the linked interpreter
// does, so it is invisible mid-simulation.
func (s *Session) maybeHotSwap(m *Metrics) {
	sm := s.Sim
	if s.group != nil || sm == nil || s.entry == nil || sm.Backend != repcut.BackendLinked {
		return
	}
	k := s.entry.Native()
	if k == nil || sm.Engine.NativeInstalled() {
		return
	}
	if err := sm.Engine.InstallNative(k.Threads); err == nil {
		sm.Backend = repcut.BackendNative
		m.codegenHotSwapped.Add(1)
	}
}

// release frees the session's backend resources (its batch lane, if any).
// Called with s.mu held, exactly once, by SessionManager.finish.
func (s *Session) release() {
	if g := s.group; g != nil {
		g.pool.free(g, s.lane)
		s.group = nil
	}
}

// touch records activity for the idle reaper.
func (s *Session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// SessionManager owns the live-session table: bounded admission
// (par.Sem), lane placement via the batch pool, idle reaping, and a
// graceful drain that lets in-flight operations finish before the last
// session is torn down.
type SessionManager struct {
	sem   *par.Sem
	idle  time.Duration
	m     *Metrics
	batch *batchPool

	mu   sync.Mutex
	byID map[string]*Session
	seq  atomic.Int64
	// migrated holds forwarding addresses for sessions that moved to a peer
	// during DrainMigrate, keyed by their old ID (guarded by mu).
	migrated map[string]Migrated

	draining atomic.Bool
	ops      sync.WaitGroup
}

// NewSessionManager creates a manager admitting at most maxLive concurrent
// sessions, reaping sessions idle longer than idleTimeout (0 disables
// reaping), and coalescing same-program sessions into batch groups of
// batchLanes lanes (<= 1 disables batching).
func NewSessionManager(maxLive int, idleTimeout time.Duration, batchLanes int, m *Metrics) *SessionManager {
	if m == nil {
		m = NewMetrics()
	}
	return &SessionManager{
		sem:      par.NewSem(maxLive),
		idle:     idleTimeout,
		m:        m,
		batch:    newBatchPool(batchLanes, m),
		byID:     make(map[string]*Session),
		migrated: make(map[string]Migrated),
	}
}

// Live returns the number of live sessions.
func (sm *SessionManager) Live() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.byID)
}

// Capacity returns the admission limit.
func (sm *SessionManager) Capacity() int { return sm.sem.Cap() }

// BatchStats exposes the batch pool gauges.
func (sm *SessionManager) BatchStats() (groups, occupied, capacity int) {
	return sm.batch.stats()
}

// Create opens a session over a cached entry, placing it on a batch lane
// unless solo is set or the program is ineligible. ErrSessionLimit when
// the admission bound is hit (HTTP 429), ErrDraining during shutdown
// (503).
func (sm *SessionManager) Create(e *Entry, solo bool) (*Session, error) {
	if sm.draining.Load() {
		return nil, ErrDraining
	}
	if !sm.sem.TryAcquire() {
		sm.m.sessionsRejected.Add(1)
		return nil, ErrSessionLimit
	}
	s := &Session{
		ID:     fmt.Sprintf("s%08x", sm.seq.Add(1)),
		Key:    e.Key,
		report: e.Compiled.Report,
		com:    e.Compiled,
		entry:  e,
	}
	if !solo {
		if g, lane, ok := sm.batch.alloc(e); ok {
			s.group, s.lane = g, lane
		}
	}
	if s.group == nil {
		s.Sim = e.Compiled.NewSimulator()
		sm.m.sessionsSolo.Add(1)
	} else {
		sm.m.sessionsBatched.Add(1)
	}
	s.touch(time.Now())
	sm.mu.Lock()
	if sm.draining.Load() { // re-check under the table lock
		sm.mu.Unlock()
		s.release()
		sm.sem.Release()
		return nil, ErrDraining
	}
	sm.byID[s.ID] = s
	sm.mu.Unlock()
	sm.m.sessionsCreated.Add(1)
	return s, nil
}

// Do runs fn against a live session with the session mutex held, keeping
// the operation visible to graceful drain. The idle clock is touched on
// entry and exit, so a long Run(n) doesn't get its session reaped from
// under it.
func (sm *SessionManager) Do(id string, fn func(*Session) error) error {
	sm.mu.Lock()
	if sm.draining.Load() {
		// A migrated session's clients get the forwarding address even while
		// the drain is still in progress.
		if merr := sm.migratedErr(id); merr != nil {
			sm.mu.Unlock()
			return merr
		}
		sm.mu.Unlock()
		return ErrDraining
	}
	s, ok := sm.byID[id]
	if !ok {
		if merr := sm.migratedErr(id); merr != nil {
			sm.mu.Unlock()
			return merr
		}
		sm.mu.Unlock()
		return ErrNoSession
	}
	sm.ops.Add(1)
	sm.mu.Unlock()
	defer sm.ops.Done()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.touch(time.Now())
	s.maybeHotSwap(sm.m)
	err := fn(s)
	s.touch(time.Now())
	return err
}

// Close tears down one session. Idempotent at the HTTP layer: a second
// close reports ErrNoSession.
func (sm *SessionManager) Close(id string) (*Session, error) {
	sm.mu.Lock()
	s, ok := sm.byID[id]
	if ok {
		delete(sm.byID, id)
	}
	var merr error
	if !ok {
		merr = sm.migratedErr(id)
	}
	sm.mu.Unlock()
	if !ok {
		if merr != nil {
			return nil, merr
		}
		return nil, ErrNoSession
	}
	sm.finish(s)
	sm.m.sessionsClosed.Add(1)
	return s, nil
}

// finish marks a removed session closed and returns its admission slot
// and batch lane. It waits for any in-flight operation by taking the
// session mutex.
func (sm *SessionManager) finish(s *Session) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.release()
		sm.sem.Release()
	}
	s.mu.Unlock()
}

// Reap closes every session idle longer than the idle timeout and returns
// how many it closed. The server's reaper loop calls it periodically;
// tests call it directly with a synthetic clock.
func (sm *SessionManager) Reap(now time.Time) int {
	if sm.idle <= 0 {
		return 0
	}
	cutoff := now.Add(-sm.idle).UnixNano()
	sm.mu.Lock()
	var stale []*Session
	for id, s := range sm.byID {
		if s.lastUsed.Load() < cutoff {
			stale = append(stale, s)
			delete(sm.byID, id)
		}
	}
	sm.mu.Unlock()
	for _, s := range stale {
		sm.finish(s)
		sm.m.sessionsReaped.Add(1)
	}
	return len(stale)
}

// Drain stops admitting work and waits — up to the context deadline — for
// in-flight operations to finish, then closes every remaining session.
// Steps already executing complete; new creates and ops get ErrDraining.
func (sm *SessionManager) Drain(ctx context.Context) error {
	sm.draining.Store(true)
	done := make(chan struct{})
	go func() {
		sm.ops.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	sm.mu.Lock()
	rest := make([]*Session, 0, len(sm.byID))
	for id, s := range sm.byID {
		rest = append(rest, s)
		delete(sm.byID, id)
	}
	sm.mu.Unlock()
	for _, s := range rest {
		sm.finish(s)
		sm.m.sessionsClosed.Add(1)
	}
	return err
}
