package costmodel

import (
	"math/rand"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/firrtl"
)

func logicVertex(op firrtl.PrimOp, width int) cgraph.Vertex {
	return cgraph.Vertex{Kind: cgraph.KindLogic, Op: op, Type: firrtl.UInt(width)}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		v    cgraph.Vertex
		want Class
	}{
		{logicVertex(firrtl.OpAdd, 8), ClassAddSub},
		{logicVertex(firrtl.OpMul, 8), ClassMul},
		{logicVertex(firrtl.OpDiv, 8), ClassDiv},
		{logicVertex(firrtl.OpXor, 8), ClassALU},
		{logicVertex(firrtl.OpMux, 8), ClassALU},
		{logicVertex(firrtl.OpDshl, 8), ClassDynShift},
		{logicVertex(firrtl.OpXorR, 8), ClassReduce},
		{cgraph.Vertex{Kind: cgraph.KindMemRead, Type: firrtl.UInt(8)}, ClassMemRead},
		{cgraph.Vertex{Kind: cgraph.KindMemWrite, Type: firrtl.UInt(8)}, ClassMemWrite},
		{cgraph.Vertex{Kind: cgraph.KindRegWrite, Type: firrtl.UInt(8)}, ClassCopy},
		{cgraph.Vertex{Kind: cgraph.KindOutput, Type: firrtl.UInt(8)}, ClassCopy},
		{cgraph.Vertex{Kind: cgraph.KindConst, Type: firrtl.UInt(8)}, ClassConst},
	}
	for _, c := range cases {
		if got := ClassOf(&c.v); got != c.want {
			t.Errorf("ClassOf(%v/%v) = %v, want %v", c.v.Kind, c.v.Op, got, c.want)
		}
	}
}

func TestVertexCostScalesWithWidth(t *testing.T) {
	m := Default()
	narrow := logicVertex(firrtl.OpAdd, 32)
	wide := logicVertex(firrtl.OpAdd, 256) // 4 words
	cn := m.VertexCost(&narrow)
	cw := m.VertexCost(&wide)
	if cw <= cn {
		t.Fatalf("wide add (%d) should cost more than narrow (%d)", cw, cn)
	}
	// Sources cost zero.
	src := cgraph.Vertex{Kind: cgraph.KindRegRead, Type: firrtl.UInt(32)}
	if m.VertexCost(&src) != 0 {
		t.Fatalf("source cost must be 0")
	}
}

func TestUnweightedModel(t *testing.T) {
	m := Unweighted()
	a := logicVertex(firrtl.OpDiv, 512)
	b := logicVertex(firrtl.OpNot, 1)
	if m.VertexCost(&a) != 1 || m.VertexCost(&b) != 1 {
		t.Fatalf("unweighted model must cost 1 per vertex")
	}
}

func TestRelativeOrder(t *testing.T) {
	m := Default()
	div := logicVertex(firrtl.OpDiv, 32)
	mul := logicVertex(firrtl.OpMul, 32)
	add := logicVertex(firrtl.OpAdd, 32)
	xor := logicVertex(firrtl.OpXor, 32)
	if !(m.VertexCost(&div) > m.VertexCost(&mul) &&
		m.VertexCost(&mul) > m.VertexCost(&add) &&
		m.VertexCost(&add) > m.VertexCost(&xor)) {
		t.Fatalf("cost order should be div > mul > add > xor")
	}
}

// Fit must recover known weights from synthetic noiseless samples.
func TestFitRecoversWeights(t *testing.T) {
	truth := Default()
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 200; i++ {
		var s Sample
		// A random mix of vertices.
		nv := 10 + rng.Intn(100)
		for j := 0; j < nv; j++ {
			var v cgraph.Vertex
			switch rng.Intn(6) {
			case 0:
				v = logicVertex(firrtl.OpAdd, 1+rng.Intn(128))
			case 1:
				v = logicVertex(firrtl.OpXor, 1+rng.Intn(64))
			case 2:
				v = logicVertex(firrtl.OpMul, 1+rng.Intn(32))
			case 3:
				v = cgraph.Vertex{Kind: cgraph.KindMemRead, Type: firrtl.UInt(32)}
			case 4:
				v = cgraph.Vertex{Kind: cgraph.KindRegWrite, Type: firrtl.UInt(16)}
			case 5:
				v = logicVertex(firrtl.OpXorR, 1+rng.Intn(64))
			}
			f := Features(&v)
			for c := 0; c < int(NumClasses); c++ {
				s.Features[c] += f[c]
			}
			s.Time += float64(truth.VertexCost(&v))
		}
		samples = append(samples, s)
	}
	fitted, err := Fit(samples)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	// Classes present in the data should be recovered within a few
	// percent (integer truncation in VertexCost adds small bias).
	for _, c := range []Class{ClassALU, ClassAddSub, ClassMul, ClassMemRead, ClassCopy, ClassReduce, ClassDispatch} {
		got, want := fitted.Weights[c], truth.Weights[c]
		if want == 0 {
			continue
		}
		rel := (got - want) / want
		if rel < -0.15 || rel > 0.15 {
			t.Errorf("class %v: fitted %.1f vs truth %.1f", c, got, want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatalf("fit with no samples must error")
	}
}

func TestFitClampsNegative(t *testing.T) {
	// Construct adversarial samples where a class would fit negative.
	var samples []Sample
	for i := 0; i < 20; i++ {
		var s Sample
		s.Features[ClassALU] = float64(i + 1)
		s.Features[ClassDispatch] = float64(i + 1)
		s.Time = float64(i+1) * 50
		samples = append(samples, s)
		var s2 Sample
		s2.Features[ClassMul] = float64(i + 1)
		s2.Features[ClassDispatch] = float64(i + 1)
		s2.Time = 0 // impossible: forces negative mul weight
		samples = append(samples, s2)
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	for c := 0; c < int(NumClasses); c++ {
		if m.Weights[c] < 0 {
			t.Fatalf("class %d fitted negative", c)
		}
	}
}
