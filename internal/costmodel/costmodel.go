// Package costmodel predicts the simulation time of circuit vertices and
// partitions — RepCut's "simulation effort model" (§4.3 of the paper).
//
// The model is linear, exactly as in the paper: the predicted cost of a
// vertex is a per-operation-class weight scaled by the number of 64-bit
// words its result occupies, plus a fixed dispatch overhead. Class weights
// come either from the calibrated defaults below or from a least-squares
// fit (Fit) against measured execution times of circuit partitions.
//
// Costs are expressed in integer model units (1 unit = 0.01 ns of predicted
// single-thread execution) so they can be used directly as hypergraph
// vertex/edge weights.
package costmodel

import (
	"fmt"

	"repro/internal/cgraph"
	"repro/internal/firrtl"
)

// Class groups primitive operations with similar execution cost.
type Class int

// Operation classes (the model's features).
const (
	ClassDispatch Class = iota // per-vertex interpreter overhead
	ClassALU                   // and/or/xor/not/bits/cat/pad/shifts/mux/cmp
	ClassAddSub
	ClassMul
	ClassDiv
	ClassDynShift
	ClassReduce
	ClassMemRead
	ClassMemWrite
	ClassCopy  // register write / output copy
	ClassConst // constant materialization
	NumClasses
)

var classNames = [NumClasses]string{
	"dispatch", "alu", "addsub", "mul", "div", "dynshift",
	"reduce", "memread", "memwrite", "copy", "const",
}

func (c Class) String() string {
	if c >= 0 && c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("?class(%d)", int(c))
}

// ClassOf returns the cost class of a vertex.
func ClassOf(v *cgraph.Vertex) Class {
	switch v.Kind {
	case cgraph.KindConst:
		return ClassConst
	case cgraph.KindMemRead:
		return ClassMemRead
	case cgraph.KindMemWrite:
		return ClassMemWrite
	case cgraph.KindRegWrite, cgraph.KindOutput:
		return ClassCopy
	case cgraph.KindLogic:
		switch v.Op {
		case firrtl.OpAdd, firrtl.OpSub, firrtl.OpNeg, firrtl.OpCvt:
			return ClassAddSub
		case firrtl.OpMul:
			return ClassMul
		case firrtl.OpDiv, firrtl.OpRem:
			return ClassDiv
		case firrtl.OpDshl, firrtl.OpDshr:
			return ClassDynShift
		case firrtl.OpAndR, firrtl.OpOrR, firrtl.OpXorR:
			return ClassReduce
		default:
			return ClassALU
		}
	}
	// Sources execute nothing during evaluation.
	return ClassConst
}

// words returns how many 64-bit words a vertex's value needs (minimum 1).
func words(v *cgraph.Vertex) int64 {
	w := (v.Type.Width + 63) / 64
	if w < 1 {
		w = 1
	}
	return int64(w)
}

// Model holds per-class weights in model units per word, plus the dispatch
// overhead applied once per vertex.
type Model struct {
	// Weights[c] is the per-word cost of class c; Weights[ClassDispatch]
	// is per-vertex.
	Weights [NumClasses]float64
	// Flat, if true, ignores the weights and charges 1 unit per vertex —
	// the "RepCut UW" (unweighted) configuration from the paper.
	Flat bool
}

// Default returns the calibrated model. The values approximate per-op
// costs of compiled full-cycle simulator code on a modern x86 host (units
// of 0.01 ns at stall-free IPC; an average node costs ~0.32 ns).
func Default() Model {
	var m Model
	m.Weights = [NumClasses]float64{
		ClassDispatch: 20,
		ClassALU:      8,
		ClassAddSub:   9,
		ClassMul:      35,
		ClassDiv:      230,
		ClassDynShift: 22,
		ClassReduce:   15,
		ClassMemRead:  43,
		ClassMemWrite: 50,
		ClassCopy:     10,
		ClassConst:    3,
	}
	return m
}

// Unweighted returns the flat model used by the RepCut UW baseline: every
// vertex costs one unit regardless of operation or width.
func Unweighted() Model {
	return Model{Flat: true}
}

// VertexCost predicts the cost of simulating one vertex, in model units.
// Source vertices cost nothing (they are state reads resolved by layout).
func (m Model) VertexCost(v *cgraph.Vertex) int64 {
	if v.Kind.IsSource() {
		return 0
	}
	if m.Flat {
		return 1
	}
	c := m.Weights[ClassDispatch] + m.Weights[ClassOf(v)]*float64(words(v))
	if c < 1 {
		c = 1
	}
	return int64(c)
}

// GraphCost sums VertexCost over all vertices of g.
func (m Model) GraphCost(g *cgraph.Graph) int64 {
	var t int64
	for i := range g.Vs {
		t += m.VertexCost(&g.Vs[i])
	}
	return t
}

// Features returns the per-class word counts of a vertex, the regressors of
// the linear model: Features[ClassDispatch] is 1 and Features[ClassOf(v)]
// is the word count.
func Features(v *cgraph.Vertex) [NumClasses]float64 {
	var f [NumClasses]float64
	if v.Kind.IsSource() {
		return f
	}
	f[ClassDispatch] = 1
	f[ClassOf(v)] += float64(words(v))
	return f
}

// Sample is one fitting observation: the summed features of a circuit
// partition and its measured execution time in model units.
type Sample struct {
	Features [NumClasses]float64
	Time     float64
}

// Fit computes model weights by ridge-regularized least squares over the
// samples (normal equations solved by Gaussian elimination with partial
// pivoting). Negative fitted weights are clamped to zero: a negative
// simulation cost is physically meaningless and only arises from collinear
// features.
func Fit(samples []Sample) (Model, error) {
	if len(samples) < int(NumClasses) {
		return Model{}, fmt.Errorf("costmodel: need at least %d samples, got %d", int(NumClasses), len(samples))
	}
	const n = int(NumClasses)
	var ata [n][n]float64
	var aty [n]float64
	for _, s := range samples {
		for i := 0; i < n; i++ {
			if s.Features[i] == 0 {
				continue
			}
			aty[i] += s.Features[i] * s.Time
			for j := 0; j < n; j++ {
				ata[i][j] += s.Features[i] * s.Features[j]
			}
		}
	}
	// Ridge: keeps the system solvable when a class never appears.
	const ridge = 1e-6
	var trace float64
	for i := 0; i < n; i++ {
		trace += ata[i][i]
	}
	lambda := ridge * (trace/float64(n) + 1)
	for i := 0; i < n; i++ {
		ata[i][i] += lambda
	}
	x, err := solve(ata, aty)
	if err != nil {
		return Model{}, err
	}
	var m Model
	for i := 0; i < n; i++ {
		if x[i] < 0 {
			x[i] = 0
		}
		m.Weights[i] = x[i]
	}
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on an n×n
// system.
func solve(a [NumClasses][NumClasses]float64, b [NumClasses]float64) ([NumClasses]float64, error) {
	const n = int(NumClasses)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		if abs(a[piv][col]) < 1e-12 {
			return b, fmt.Errorf("costmodel: singular normal equations (column %d)", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [NumClasses]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// UnitsToNanos converts model units to nanoseconds.
func UnitsToNanos(u int64) float64 { return float64(u) * 0.01 }

// NanosToUnits converts nanoseconds to model units.
func NanosToUnits(ns float64) float64 { return ns * 100 }

// ProfileScales turns measured per-partition execution times into weight
// multipliers for a profile-guided repartition (the measured-cost source of
// the PGO loop). measuredNs[p] is partition p's mean measured eval+commit
// time per cycle; predictedUnits[p] is the model's prediction for the same
// code (ThreadCode.CostUnits). The returned scale for p is the ratio of
// p's measured-vs-predicted slowdown to the mean slowdown, so scales
// average to 1 and only *relative* mispredictions reshape the partition.
// Partitions with no measurement or no predicted work scale by 1.
func ProfileScales(measuredNs, predictedUnits []float64) []float64 {
	n := len(measuredNs)
	if len(predictedUnits) < n {
		n = len(predictedUnits)
	}
	scales := make([]float64, n)
	ratios := make([]float64, n)
	var sum float64
	var cnt int
	for p := 0; p < n; p++ {
		scales[p] = 1
		if measuredNs[p] > 0 && predictedUnits[p] > 0 {
			ratios[p] = NanosToUnits(measuredNs[p]) / predictedUnits[p]
			sum += ratios[p]
			cnt++
		}
	}
	if cnt == 0 {
		return scales
	}
	mean := sum / float64(cnt)
	if mean <= 0 {
		return scales
	}
	for p := 0; p < n; p++ {
		if ratios[p] > 0 {
			scales[p] = ratios[p] / mean
		}
	}
	return scales
}
