package genckt

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/cgraph"
	"repro/internal/firrtl"
)

// Design is a fully emitted circuit: the spec it came from, the textual IR,
// the parsed+checked circuit, and the split DAG. Text and Graph come from
// the same print→parse→check→flatten→lower pipeline real input takes, so
// every generated design exercises the firrtl front end end-to-end.
type Design struct {
	Spec    *Spec
	Text    string
	Circuit *firrtl.Circuit
	Graph   *cgraph.Graph
}

// AddrWidth returns the address port width for a memory of the given depth.
func AddrWidth(depth int) int {
	w := bits.Len(uint(depth - 1))
	if w < 1 {
		w = 1
	}
	return w
}

// coerce adapts e to exactly the wanted type: a cast if the kinds differ,
// then a truncate (bits) or widen (pad). It is the emission-time glue that
// keeps any shrink transformation type-correct.
func coerce(e firrtl.Expr, want firrtl.Type) firrtl.Expr {
	t := e.Type()
	if t.Kind != want.Kind {
		if want.Kind == firrtl.KSInt {
			e = firrtl.P(firrtl.OpAsSInt, e)
		} else {
			e = firrtl.P(firrtl.OpAsUInt, e)
		}
		t = e.Type()
	}
	if t.Width > want.Width {
		e = firrtl.BitsE(e, want.Width-1, 0)
		if want.Kind == firrtl.KSInt {
			e = firrtl.P(firrtl.OpAsSInt, e)
		}
	} else if t.Width < want.Width {
		e = firrtl.PadE(want.Width, e)
	}
	return e
}

// Build emits the spec through the real front-end pipeline. Any type error
// the builder panics on is returned as an error (the shrinker probes
// candidate specs and must survive invalid ones).
func (s *Spec) Build() (d *Design, err error) {
	defer func() {
		if r := recover(); r != nil {
			d, err = nil, fmt.Errorf("genckt: emit %s: %v", s.Name, r)
		}
	}()

	name := s.Name
	if name == "" {
		name = "Gen"
	}
	b := firrtl.NewBuilder(name)
	mb := b.Module(name)

	inRefs := make([]firrtl.Expr, len(s.Inputs))
	for i, p := range s.Inputs {
		inRefs[i] = mb.Input(p.Name, p.Type)
	}
	regRefs := make([]*firrtl.Ref, len(s.Regs))
	for i, r := range s.Regs {
		regRefs[i] = mb.Reg(r.Name, r.Type, r.Init)
	}
	memRefs := make([]*firrtl.MemHandle, len(s.Mems))
	for i, m := range s.Mems {
		memRefs[i] = mb.Mem(m.Name, firrtl.UInt(m.Width), m.Depth)
	}

	nodeRefs := make([]firrtl.Expr, 0, len(s.Nodes))
	refExpr := func(r VRef) firrtl.Expr {
		switch r.Kind {
		case RInput:
			return inRefs[r.Idx]
		case RReg:
			return regRefs[r.Idx]
		case RNode:
			return nodeRefs[r.Idx]
		default:
			t := firrtl.UInt(r.Lit.Width)
			if r.Signed {
				t = firrtl.SInt(r.Lit.Width)
			}
			return &firrtl.Lit{Typ: t, Val: bitvec.ZeroExtend(r.Lit.Width, r.Lit)}
		}
	}
	arg := func(n *NodeSpec, i int) firrtl.Expr {
		return coerce(refExpr(n.Args[i]), n.ArgTypes[i])
	}

	for i := range s.Nodes {
		n := &s.Nodes[i]
		var e firrtl.Expr
		switch n.Kind {
		case NMemRead:
			e = memRefs[n.Mem].Read(arg(n, 0))
		default:
			args := make([]firrtl.Expr, len(n.Args))
			for j := range n.Args {
				args[j] = arg(n, j)
			}
			e = firrtl.PC(n.Op, args, n.Consts)
		}
		if got := e.Type(); got != n.Type {
			return nil, fmt.Errorf("genckt: node %s inferred %s, spec says %s", n.Name, got, n.Type)
		}
		nodeRefs = append(nodeRefs, mb.Node(n.Name, e))
	}

	for i := range s.Regs {
		mb.Connect(regRefs[i], coerce(refExpr(s.RegDrv[i]), s.Regs[i].Type))
	}
	for _, w := range s.MemWrs {
		m := s.Mems[w.Mem]
		memRefs[w.Mem].Write(
			coerce(refExpr(w.Addr), firrtl.UInt(AddrWidth(m.Depth))),
			coerce(refExpr(w.Data), firrtl.UInt(m.Width)),
			coerce(refExpr(w.En), firrtl.UInt(1)))
	}
	for _, o := range s.Outputs {
		out := mb.Output(o.Name, o.Type)
		mb.Connect(out, coerce(refExpr(o.Src), o.Type))
	}

	text := firrtl.Print(b.Circuit())
	return FromText(s, text)
}

// FromText runs textual IR through parse→check→flatten→lower→build. The
// spec may be nil (crasher replay from a .fir file).
func FromText(s *Spec, text string) (*Design, error) {
	c, err := firrtl.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("genckt: reparse: %w", err)
	}
	if err := firrtl.Check(c); err != nil {
		return nil, fmt.Errorf("genckt: recheck: %w", err)
	}
	fc, err := firrtl.Flatten(c)
	if err != nil {
		return nil, fmt.Errorf("genckt: flatten: %w", err)
	}
	lc, err := firrtl.Lower(fc)
	if err != nil {
		return nil, fmt.Errorf("genckt: lower: %w", err)
	}
	g, err := cgraph.Build(lc)
	if err != nil {
		return nil, fmt.Errorf("genckt: graph: %w", err)
	}
	return &Design{Spec: s, Text: text, Circuit: c, Graph: g}, nil
}
