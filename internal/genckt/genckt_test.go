package genckt

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/sim"
)

func build(t *testing.T, seed int64, size int) *Design {
	t.Helper()
	s := Generate(Config{Seed: seed, Size: size})
	d, err := s.Build()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return d
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := build(t, seed, 50)
		b := build(t, seed, 50)
		if a.Text != b.Text {
			t.Fatalf("seed %d: non-deterministic emission", seed)
		}
		if a.Graph.NumVertices() != b.Graph.NumVertices() {
			t.Fatalf("seed %d: graph size differs", seed)
		}
	}
}

func TestGenerateBuildsValidCircuits(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		d := build(t, seed, 50)
		g := d.Graph
		if len(g.Outputs) == 0 {
			t.Fatalf("seed %d: no outputs", seed)
		}
		// A short reference run must not panic and must produce in-range
		// values.
		ref := sim.NewReference(g)
		rng := rand.New(rand.NewSource(seed * 31))
		for cyc := 0; cyc < 4; cyc++ {
			for _, vi := range g.Inputs {
				v := g.Vs[vi]
				w := bitvec.New(v.Type.Width)
				for j := range w.Words {
					w.Words[j] = rng.Uint64()
				}
				if err := ref.PokeInput(v.Name, bitvec.ZeroExtend(v.Type.Width, w)); err != nil {
					t.Fatalf("seed %d: poke %s: %v", seed, v.Name, err)
				}
			}
			ref.Step()
		}
		for _, o := range g.Outputs {
			v, err := ref.PeekOutput(g.Vs[o].Name)
			if err != nil {
				t.Fatalf("seed %d: peek %s: %v", seed, g.Vs[o].Name, err)
			}
			if v.Width != g.Vs[o].Type.Width {
				t.Fatalf("seed %d: output %s width %d, want %d",
					seed, g.Vs[o].Name, v.Width, g.Vs[o].Type.Width)
			}
		}
	}
}

// TestOpcodeCoverage compiles many generated circuits and checks the union
// of executed opcodes spans every interpreter opcode class the generator
// claims to cover — including the signed and dynamic-shift forms and both
// memory port directions.
func TestOpcodeCoverage(t *testing.T) {
	seen := map[sim.OpCode]bool{}
	for seed := int64(1); seed <= 60; seed++ {
		s := Generate(Config{Seed: seed, Size: 60})
		d, err := s.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := sim.Compile(d.Graph, sim.SerialSpec(d.Graph), sim.Config{OptLevel: 0})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		for _, th := range p.Threads {
			for _, in := range th.Code {
				seen[in.Op] = true
			}
		}
	}
	want := []sim.OpCode{
		sim.OpAdd, sim.OpSub, sim.OpMul, sim.OpDiv, sim.OpRem,
		sim.OpSDiv, sim.OpSRem,
		sim.OpLt, sim.OpSLt, sim.OpEq,
		sim.OpAnd, sim.OpOr, sim.OpXor, sim.OpNot, sim.OpNeg,
		sim.OpAndr, sim.OpOrr, sim.OpXorr,
		sim.OpCat, sim.OpShl, sim.OpShr, sim.OpSar,
		sim.OpDshl, sim.OpDshr, sim.OpDsar,
		sim.OpMux, sim.OpSext,
		sim.OpMemRd, sim.OpMemWr, sim.OpWide,
	}
	for _, op := range want {
		if !seen[op] {
			t.Errorf("opcode %v never generated across 60 seeds", op)
		}
	}
}

// TestShrinkTransformsStayBuildable applies each shrink transformation and
// checks the result still emits a valid circuit.
func TestShrinkTransformsStayBuildable(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := Generate(Config{Seed: seed, Size: 40})
		cands := []*Spec{
			s.RemoveNode(0),
			s.RemoveNode(len(s.Nodes) - 1),
			s.RemoveReg(0),
			s.RemoveInput(0),
			s.RemoveMemWrite(0),
			s.RemoveOutput(0),
			s.NarrowReg(0, 1),
			s.NarrowInput(0, 1),
			s.NarrowOutput(0, 1),
		}
		if c := s.RemoveMem(len(s.Mems) - 1); c != nil {
			cands = append(cands, c)
		}
		dd, _ := s.DropDeadNodes()
		cands = append(cands, dd)
		for i, c := range cands {
			if c == nil {
				continue
			}
			if _, err := c.Build(); err != nil {
				t.Fatalf("seed %d cand %d (%s): %v", seed, i, c.Counts(), err)
			}
		}
	}
}

// TestDropDeadNodesPreservesBehavior removes dead nodes and checks outputs
// are unchanged over a short run.
func TestDropDeadNodesPreservesBehavior(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s := Generate(Config{Seed: seed, Size: 50})
		dd, n := s.DropDeadNodes()
		if n == 0 {
			continue
		}
		d0, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		d1, err := dd.Build()
		if err != nil {
			t.Fatal(err)
		}
		r0 := sim.NewReference(d0.Graph)
		r1 := sim.NewReference(d1.Graph)
		rng := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 5; cyc++ {
			for _, vi := range d0.Graph.Inputs {
				v := d0.Graph.Vs[vi]
				w := bitvec.New(v.Type.Width)
				for j := range w.Words {
					w.Words[j] = rng.Uint64()
				}
				w = bitvec.ZeroExtend(v.Type.Width, w)
				if err := r0.PokeInput(v.Name, w); err != nil {
					t.Fatal(err)
				}
				if err := r1.PokeInput(v.Name, w); err != nil {
					t.Fatal(err)
				}
			}
			r0.Step()
			r1.Step()
			for _, o := range d0.Graph.Outputs {
				name := d0.Graph.Vs[o].Name
				v0, err0 := r0.PeekOutput(name)
				v1, err1 := r1.PeekOutput(name)
				if err0 != nil || err1 != nil {
					t.Fatalf("seed %d: peek %s: %v %v", seed, name, err0, err1)
				}
				if !bitvec.Eq(v0, v1) {
					t.Fatalf("seed %d cycle %d: output %s changed after dead-node removal", seed, cyc, name)
				}
			}
		}
	}
}

func TestClassicDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g1, err := Classic(seed, 60)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := Classic(seed, 60)
		if err != nil {
			t.Fatal(err)
		}
		if g1.NumVertices() != g2.NumVertices() {
			t.Fatalf("seed %d: Classic non-deterministic", seed)
		}
	}
}

func TestFromTextRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"circuit X {",
		"circuit X { module X { output o : UInt<0> } }",
	}
	for i, src := range cases {
		if _, err := FromText(nil, src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func BenchmarkGenerateBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := Generate(Config{Seed: int64(i), Size: 50})
		if _, err := s.Build(); err != nil {
			b.Fatalf("seed %d: %v", i, err)
		}
	}
}
