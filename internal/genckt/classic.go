package genckt

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/cgraph"
	"repro/internal/firrtl"
)

// Classic builds the original random synchronous circuit the internal/sim
// tests were seeded with (the former test-local randomCircuit helper,
// preserved bit-for-bit: same rng consumption order, so every historical
// seed produces the identical graph). New code should prefer Generate,
// whose Spec form the shrinker understands.
func Classic(seed int64, size int) (g *cgraph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("genckt: classic(%d,%d): %v", seed, size, r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	b := firrtl.NewBuilder("Rnd")
	mb := b.Module("Rnd")

	type val struct {
		e firrtl.Expr
	}
	var pool []val
	addVal := func(e firrtl.Expr) {
		pool = append(pool, val{e: e})
	}
	pick := func() firrtl.Expr { return pool[rng.Intn(len(pool))].e }
	pickUInt := func() firrtl.Expr {
		for tries := 0; tries < 50; tries++ {
			e := pick()
			if e.Type().Kind == firrtl.KUInt {
				return e
			}
		}
		return firrtl.U(8, uint64(rng.Intn(256)))
	}
	pickUIntNarrow := func(maxW int) firrtl.Expr {
		for tries := 0; tries < 50; tries++ {
			e := pick()
			if e.Type().Kind == firrtl.KUInt && e.Type().Width <= maxW {
				return e
			}
		}
		return firrtl.U(4, uint64(rng.Intn(16)))
	}

	// Inputs.
	in1 := mb.Input("in1", firrtl.UInt(16))
	in2 := mb.Input("in2", firrtl.UInt(70)) // wide input
	addVal(in1)
	addVal(in2)

	// Registers (narrow, signed, wide).
	var regs []*firrtl.Ref
	nRegs := 4 + rng.Intn(5)
	for i := 0; i < nRegs; i++ {
		var ty firrtl.Type
		switch rng.Intn(4) {
		case 0:
			ty = firrtl.SInt(3 + rng.Intn(20))
		case 1:
			ty = firrtl.UInt(65 + rng.Intn(80)) // wide
		default:
			ty = firrtl.UInt(1 + rng.Intn(48))
		}
		r := mb.Reg(fmt.Sprintf("r%d", i), ty, rng.Uint64())
		regs = append(regs, r)
		addVal(r)
	}

	// A memory with narrow elements and one with wide elements.
	memN := mb.Mem("mn", firrtl.UInt(24), 32)
	memW := mb.Mem("mw", firrtl.UInt(96), 8)

	// Random combinational nodes.
	bin := []firrtl.PrimOp{firrtl.OpAdd, firrtl.OpSub, firrtl.OpMul, firrtl.OpAnd,
		firrtl.OpOr, firrtl.OpXor, firrtl.OpCat, firrtl.OpLt, firrtl.OpLeq,
		firrtl.OpGt, firrtl.OpGeq, firrtl.OpEq, firrtl.OpNeq, firrtl.OpDiv, firrtl.OpRem}
	for i := 0; i < size; i++ {
		var e firrtl.Expr
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // binary op with kind-matched args
			op := bin[rng.Intn(len(bin))]
			a := pick()
			var bb firrtl.Expr
			found := false
			for tries := 0; tries < 50; tries++ {
				bb = pick()
				if bb.Type().Kind == a.Type().Kind {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			if op == firrtl.OpMul && a.Type().Width+bb.Type().Width > 190 {
				continue // keep widths bounded
			}
			if op == firrtl.OpCat && (a.Type().Kind != firrtl.KUInt || bb.Type().Kind != firrtl.KUInt) {
				continue
			}
			if op == firrtl.OpCat && a.Type().Width+bb.Type().Width > 190 {
				continue
			}
			if (op == firrtl.OpDiv || op == firrtl.OpRem) && a.Type().Width > 64 {
				continue // EvalPrim handles, but keep div narrow for speed
			}
			e = firrtl.P(op, a, bb)
		case 4: // unary
			ops := []firrtl.PrimOp{firrtl.OpNot, firrtl.OpNeg, firrtl.OpAndR,
				firrtl.OpOrR, firrtl.OpXorR, firrtl.OpCvt}
			e = firrtl.P(ops[rng.Intn(len(ops))], pick())
		case 5: // bits / shifts / pad
			a := pick()
			w := a.Type().Width
			switch rng.Intn(4) {
			case 0:
				hi := rng.Intn(w)
				lo := rng.Intn(hi + 1)
				e = firrtl.BitsE(a, hi, lo)
			case 1:
				e = firrtl.PC(firrtl.OpShl, []firrtl.Expr{a}, []int{rng.Intn(8)})
			case 2:
				e = firrtl.PC(firrtl.OpShr, []firrtl.Expr{a}, []int{rng.Intn(w)})
			case 3:
				e = firrtl.PC(firrtl.OpPad, []firrtl.Expr{a}, []int{w + rng.Intn(12)})
			}
		case 6: // mux
			sel := pick()
			if sel.Type().Kind != firrtl.KUInt || sel.Type().Width != 1 {
				sel = firrtl.OrrE(pickUInt())
			}
			a := pick()
			var bb firrtl.Expr
			found := false
			for tries := 0; tries < 50; tries++ {
				bb = pick()
				if bb.Type().Kind == a.Type().Kind {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			e = firrtl.Mux(sel, a, bb)
		case 7: // dynamic shift
			a := pick()
			amt := pickUIntNarrow(4)
			if a.Type().Width+(1<<amt.Type().Width)-1 > 190 {
				continue
			}
			if rng.Intn(2) == 0 {
				e = firrtl.P(firrtl.OpDshl, a, amt)
			} else {
				e = firrtl.P(firrtl.OpDshr, a, amt)
			}
		case 8: // memory reads
			if rng.Intn(2) == 0 {
				e = memN.Read(firrtl.Trunc(5, firrtl.PadE(5, pickUIntNarrow(5))))
			} else {
				e = memW.Read(firrtl.Trunc(3, firrtl.PadE(3, pickUIntNarrow(3))))
			}
		case 9: // literal
			if rng.Intn(2) == 0 {
				e = firrtl.U(1+rng.Intn(60), rng.Uint64())
			} else {
				w := 66 + rng.Intn(60)
				v := bitvec.New(w)
				for j := range v.Words {
					v.Words[j] = rng.Uint64()
				}
				e = &firrtl.Lit{Typ: firrtl.UInt(w), Val: bitvec.ZeroExtend(w, v)}
			}
		}
		if e == nil {
			continue
		}
		addVal(mb.Node("", e))
	}

	// Drive registers from pool values of matching kind, fitted to width.
	fit := func(e firrtl.Expr, ty firrtl.Type) firrtl.Expr {
		et := e.Type()
		if et.Width > ty.Width {
			ex := firrtl.BitsE(e, ty.Width-1, 0) // UInt result
			if ty.Kind == firrtl.KSInt {
				return firrtl.P(firrtl.OpAsSInt, ex)
			}
			return ex
		}
		return e
	}
	for _, r := range regs {
		var e firrtl.Expr
		found := false
		for tries := 0; tries < 80; tries++ {
			e = pick()
			if e.Type().Kind == r.Type().Kind {
				found = true
				break
			}
		}
		if !found {
			e = r
		}
		mb.Connect(r, fit(e, r.Type()))
	}

	// Memory writes.
	memN.Write(firrtl.Trunc(5, firrtl.PadE(5, pickUIntNarrow(5))),
		fit(pickUInt(), firrtl.UInt(24)), firrtl.OrrE(pickUInt()))
	memW.Write(firrtl.Trunc(3, firrtl.PadE(3, pickUIntNarrow(3))),
		fit(pickUInt(), firrtl.UInt(96)), firrtl.OrrE(pickUInt()))

	// Outputs: xor-reduce a few pool values so everything stays live.
	o1 := mb.Output("o1", firrtl.UInt(1))
	var acc firrtl.Expr = firrtl.U(1, 0)
	for i := 0; i < 6; i++ {
		acc = firrtl.Xor(acc, firrtl.XorrE(pick()))
	}
	mb.Connect(o1, firrtl.Trunc(1, acc))
	o2 := mb.Output("o2", firrtl.UInt(70))
	mb.Connect(o2, firrtl.PadE(70, firrtl.Trunc(70, firrtl.PadE(70, pickUInt()))))

	c := b.Circuit()
	lc, err := firrtl.Lower(c)
	if err != nil {
		return nil, fmt.Errorf("genckt: classic lower: %w", err)
	}
	g, err = cgraph.Build(lc)
	if err != nil {
		return nil, fmt.Errorf("genckt: classic build: %w", err)
	}
	return g, nil
}
