package genckt

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/firrtl"
)

// Config parameterizes generation. Everything is derived deterministically
// from Seed; the same Config always yields the same Spec (and, through
// Build, byte-identical IR text).
type Config struct {
	Seed     int64
	Size     int // target combinational node count (default 50)
	MaxWidth int // widest signal to generate (default 128)
	Name     string
}

func (c *Config) defaults() {
	if c.Size <= 0 {
		c.Size = 50
	}
	if c.MaxWidth <= 0 {
		c.MaxWidth = 128
	}
	if c.MaxWidth > 128 {
		c.MaxWidth = 128
	}
	if c.Name == "" {
		c.Name = "Gen"
	}
}

// maxNodeWidth caps intermediate result widths: wide enough to force the
// multi-word bitvec path well past 128 bits, small enough to keep the
// shrinker and reference evaluator fast.
const maxNodeWidth = 192

// boundaryWidths biases generated widths toward word-boundary edge cases.
var boundaryWidths = []int{1, 2, 5, 8, 16, 31, 32, 33, 48, 63, 64, 65, 96, 127, 128}

// gen carries generation state: the spec under construction and the pool
// of references new nodes draw operands from.
type gen struct {
	rng  *rand.Rand
	cfg  Config
	spec *Spec
	pool []VRef
}

func (g *gen) width() int {
	if g.rng.Intn(3) == 0 {
		return 1 + g.rng.Intn(g.cfg.MaxWidth)
	}
	for tries := 0; tries < 10; tries++ {
		w := boundaryWidths[g.rng.Intn(len(boundaryWidths))]
		if w <= g.cfg.MaxWidth {
			return w
		}
	}
	return 1 + g.rng.Intn(g.cfg.MaxWidth)
}

func (g *gen) narrowWidth(max int) int {
	if max > 64 {
		max = 64
	}
	return 1 + g.rng.Intn(max)
}

func (g *gen) kind() firrtl.Kind {
	if g.rng.Intn(3) == 0 {
		return firrtl.KSInt
	}
	return firrtl.KUInt
}

func (g *gen) pick() VRef { return g.pool[g.rng.Intn(len(g.pool))] }

// randLit builds a random literal of the given type.
func (g *gen) randLit(t firrtl.Type) VRef {
	v := bitvec.New(t.Width)
	for i := range v.Words {
		v.Words[i] = g.rng.Uint64()
	}
	v = bitvec.ZeroExtend(t.Width, v)
	return VRef{Kind: RLit, Lit: v, Signed: t.Kind == firrtl.KSInt}
}

// addNode appends a primitive node if the types infer, returning success.
func (g *gen) addNode(op firrtl.PrimOp, args []VRef, ats []firrtl.Type, consts []int) bool {
	rt, err := firrtl.InferType(op, ats, consts)
	if err != nil || rt.Width > maxNodeWidth {
		return false
	}
	i := len(g.spec.Nodes)
	g.spec.Nodes = append(g.spec.Nodes, NodeSpec{
		Name: fmt.Sprintf("n%d", i), Kind: NPrim,
		Op: op, Consts: consts, Args: args, ArgTypes: ats, Type: rt,
	})
	g.pool = append(g.pool, VRef{Kind: RNode, Idx: i})
	return true
}

func (g *gen) addMemRead(mem int) {
	m := g.spec.Mems[mem]
	i := len(g.spec.Nodes)
	g.spec.Nodes = append(g.spec.Nodes, NodeSpec{
		Name: fmt.Sprintf("n%d", i), Kind: NMemRead, Mem: mem,
		Args:     []VRef{g.pick()},
		ArgTypes: []firrtl.Type{firrtl.UInt(AddrWidth(m.Depth))},
		Type:     firrtl.UInt(m.Width),
	})
	g.pool = append(g.pool, VRef{Kind: RNode, Idx: i})
}

var binArith = []firrtl.PrimOp{firrtl.OpAdd, firrtl.OpSub, firrtl.OpMul, firrtl.OpDiv, firrtl.OpRem}
var binCmp = []firrtl.PrimOp{firrtl.OpLt, firrtl.OpLeq, firrtl.OpGt, firrtl.OpGeq, firrtl.OpEq, firrtl.OpNeq}
var binBit = []firrtl.PrimOp{firrtl.OpAnd, firrtl.OpOr, firrtl.OpXor}
var unary = []firrtl.PrimOp{firrtl.OpNot, firrtl.OpNeg, firrtl.OpAndR, firrtl.OpOrR,
	firrtl.OpXorR, firrtl.OpCvt, firrtl.OpAsUInt, firrtl.OpAsSInt}

// step emits one random node (or pool literal).
func (g *gen) step() {
	s := g.spec
	switch g.rng.Intn(12) {
	case 0, 1: // same-kind arithmetic; signed forms reach OpSDiv/OpSRem/OpSext
		op := binArith[g.rng.Intn(len(binArith))]
		k := g.kind()
		wa, wb := g.width(), g.width()
		if op == firrtl.OpMul {
			for wa+wb > maxNodeWidth-2 {
				wa, wb = (wa+1)/2, (wb+1)/2
			}
		}
		if (op == firrtl.OpDiv || op == firrtl.OpRem) && g.rng.Intn(4) != 0 {
			wa, wb = g.narrowWidth(wa), g.narrowWidth(wb) // mostly narrow for speed
		}
		g.addNode(op, []VRef{g.pick(), g.pick()},
			[]firrtl.Type{{Kind: k, Width: wa}, {Kind: k, Width: wb}}, nil)
	case 2: // comparisons, signed and unsigned
		op := binCmp[g.rng.Intn(len(binCmp))]
		k := g.kind()
		g.addNode(op, []VRef{g.pick(), g.pick()},
			[]firrtl.Type{{Kind: k, Width: g.width()}, {Kind: k, Width: g.width()}}, nil)
	case 3: // bitwise (mixed kinds allowed)
		op := binBit[g.rng.Intn(len(binBit))]
		g.addNode(op, []VRef{g.pick(), g.pick()},
			[]firrtl.Type{{Kind: g.kind(), Width: g.width()}, {Kind: g.kind(), Width: g.width()}}, nil)
	case 4: // cat (UInt only)
		wa, wb := g.width(), g.width()
		for wa+wb > maxNodeWidth {
			wa, wb = (wa+1)/2, (wb+1)/2
		}
		g.addNode(firrtl.OpCat, []VRef{g.pick(), g.pick()},
			[]firrtl.Type{firrtl.UInt(wa), firrtl.UInt(wb)}, nil)
	case 5: // unary
		op := unary[g.rng.Intn(len(unary))]
		g.addNode(op, []VRef{g.pick()}, []firrtl.Type{{Kind: g.kind(), Width: g.width()}}, nil)
	case 6: // bits / head / tail
		at := firrtl.Type{Kind: g.kind(), Width: g.width()}
		a := []VRef{g.pick()}
		switch g.rng.Intn(3) {
		case 0:
			hi := g.rng.Intn(at.Width)
			lo := g.rng.Intn(hi + 1)
			g.addNode(firrtl.OpBits, a, []firrtl.Type{at}, []int{hi, lo})
		case 1:
			g.addNode(firrtl.OpHead, a, []firrtl.Type{at}, []int{1 + g.rng.Intn(at.Width)})
		default:
			g.addNode(firrtl.OpTail, a, []firrtl.Type{at}, []int{g.rng.Intn(at.Width)})
		}
	case 7: // constant shifts / pad (OpShl/OpShr/OpSar on signed args)
		at := firrtl.Type{Kind: g.kind(), Width: g.width()}
		a := []VRef{g.pick()}
		switch g.rng.Intn(3) {
		case 0:
			g.addNode(firrtl.OpShl, a, []firrtl.Type{at}, []int{g.rng.Intn(9)})
		case 1:
			g.addNode(firrtl.OpShr, a, []firrtl.Type{at}, []int{g.rng.Intn(at.Width + 2)})
		default:
			g.addNode(firrtl.OpPad, a, []firrtl.Type{at}, []int{at.Width + g.rng.Intn(16)})
		}
	case 8: // dynamic shifts: dshl, dshr, and dsar via SInt dshr
		at := firrtl.Type{Kind: g.kind(), Width: g.width()}
		amt := firrtl.UInt(1 + g.rng.Intn(4))
		args := []VRef{g.pick(), g.pick()}
		if g.rng.Intn(2) == 0 {
			g.addNode(firrtl.OpDshl, args, []firrtl.Type{at, amt}, nil)
		} else {
			g.addNode(firrtl.OpDshr, args, []firrtl.Type{at, amt}, nil)
		}
	case 9: // mux
		k := g.kind()
		g.addNode(firrtl.OpMux, []VRef{g.pick(), g.pick(), g.pick()},
			[]firrtl.Type{firrtl.UInt(1), {Kind: k, Width: g.width()}, {Kind: k, Width: g.width()}}, nil)
	case 10: // memory read
		if len(s.Mems) > 0 {
			g.addMemRead(g.rng.Intn(len(s.Mems)))
		}
	default: // literal into the pool
		g.pool = append(g.pool, g.randLit(firrtl.Type{Kind: g.kind(), Width: g.width()}))
	}
}

// Generate builds a random spec from the config.
func Generate(cfg Config) *Spec {
	cfg.defaults()
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, spec: &Spec{Name: cfg.Name}}
	s := g.spec

	// Inputs: at least one narrow and, width permitting, one wide.
	nIn := 2 + g.rng.Intn(2)
	for i := 0; i < nIn; i++ {
		w := g.width()
		if i == 0 {
			w = g.narrowWidth(g.cfg.MaxWidth)
		}
		if i == 1 && g.cfg.MaxWidth > 64 {
			w = 65 + g.rng.Intn(g.cfg.MaxWidth-64)
		}
		s.Inputs = append(s.Inputs, PortSpec{Name: fmt.Sprintf("in%d", i), Type: firrtl.UInt(w)})
		g.pool = append(g.pool, VRef{Kind: RInput, Idx: i})
	}

	// Registers: a mix of narrow unsigned, signed, and wide.
	nReg := 3 + g.rng.Intn(5)
	for i := 0; i < nReg; i++ {
		var t firrtl.Type
		switch g.rng.Intn(4) {
		case 0:
			t = firrtl.SInt(1 + g.narrowWidth(24))
		case 1:
			if g.cfg.MaxWidth > 64 {
				t = firrtl.UInt(65 + g.rng.Intn(g.cfg.MaxWidth-64))
			} else {
				t = firrtl.UInt(g.narrowWidth(64))
			}
		default:
			t = firrtl.UInt(g.narrowWidth(48))
		}
		s.Regs = append(s.Regs, RegSpec{Name: fmt.Sprintf("r%d", i), Type: t, Init: g.rng.Uint64()})
		g.pool = append(g.pool, VRef{Kind: RReg, Idx: i})
	}

	// Memories: one narrow, and (width permitting) one wide.
	depths := []int{4, 8, 16, 32}
	s.Mems = append(s.Mems, MemSpec{Name: "m0", Width: g.narrowWidth(48), Depth: depths[g.rng.Intn(len(depths))]})
	if g.cfg.MaxWidth > 64 && g.rng.Intn(3) != 0 {
		s.Mems = append(s.Mems, MemSpec{Name: "m1", Width: 65 + g.rng.Intn(g.cfg.MaxWidth-64), Depth: depths[g.rng.Intn(2)]})
	}

	for i := 0; i < cfg.Size; i++ {
		g.step()
	}

	// Drive every register from the pool (self-loops arise naturally when
	// the pick lands on the register's own read value).
	for range s.Regs {
		s.RegDrv = append(s.RegDrv, g.pick())
	}
	// One write port per memory. Two ports on one memory are legal IR but
	// racy when a partitioner splits them across threads (verify flags it
	// as a Warning): commit-phase writes to colliding addresses have no
	// defined order, so the differential oracle cannot use them.
	for mi := range s.Mems {
		s.MemWrs = append(s.MemWrs, MemWrite{Mem: mi, Addr: g.pick(), Data: g.pick(), En: g.pick()})
	}
	// Outputs sample pool values at their natural types: full-width
	// observability for the differential oracle.
	nOut := 3 + g.rng.Intn(3)
	for i := 0; i < nOut; i++ {
		src := g.pick()
		s.Outputs = append(s.Outputs, OutputSpec{
			Name: fmt.Sprintf("o%d", i), Type: s.TypeOf(src), Src: src,
		})
	}
	return s
}
