// Package genckt is a seeded, deterministic random-circuit generator for
// differential testing. It subsumes the test-local randomCircuit helpers:
// generated circuits exercise every interpreter opcode class (narrow and
// wide arithmetic, constant and dynamic shifts, muxes, comparisons,
// reductions, memories with read/write ports, register feedback loops,
// 1–128-bit widths) and are emitted both as textual LoFIRRTL and as a
// cgraph circuit, so the firrtl front end is exercised end-to-end on every
// generated design.
//
// The generator's intermediate form is a Spec: a flat, index-based circuit
// description that a shrinker can transform (drop nodes, remove state,
// narrow widths) while staying trivially re-emittable — every use site
// records the type it coerces its operand to, so replacing an operand with
// a zero literal or narrowing a register never produces an ill-typed
// circuit.
package genckt

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/firrtl"
)

// RefKind says which table a VRef indexes.
type RefKind uint8

// Reference kinds.
const (
	RInput RefKind = iota // Spec.Inputs
	RReg                  // Spec.Regs (the register's read value)
	RNode                 // Spec.Nodes
	RLit                  // inline literal (Lit/Signed)
)

// VRef is one operand: an input, register, earlier node, or literal.
type VRef struct {
	Kind   RefKind
	Idx    int
	Lit    bitvec.Vec // RLit payload
	Signed bool       // RLit: emit as SInt
}

// ZeroRef returns a literal-zero reference of the given type.
func ZeroRef(t firrtl.Type) VRef {
	return VRef{Kind: RLit, Lit: bitvec.New(t.Width), Signed: t.Kind == firrtl.KSInt}
}

// PortSpec declares one input port.
type PortSpec struct {
	Name string
	Type firrtl.Type
}

// RegSpec declares one register. Init is truncated to the width.
type RegSpec struct {
	Name string
	Type firrtl.Type
	Init uint64
}

// MemSpec declares one memory of UInt<Width> elements.
type MemSpec struct {
	Name  string
	Width int
	Depth int
}

// NodeKind classifies nodes.
type NodeKind uint8

// Node kinds.
const (
	NPrim    NodeKind = iota // primitive operation
	NMemRead                 // combinational memory read
)

// NodeSpec is one combinational node. Args are coerced to ArgTypes at
// emission, so a shrinker may substitute any reference (or literal) for an
// argument without re-inferring downstream types: Type is fixed.
type NodeSpec struct {
	Name     string
	Kind     NodeKind
	Op       firrtl.PrimOp // NPrim
	Consts   []int         // NPrim constant arguments
	Mem      int           // NMemRead memory index
	Args     []VRef
	ArgTypes []firrtl.Type
	Type     firrtl.Type // result type
}

// MemWrite is one write port: Data is coerced to the element width, En to
// UInt<1>, Addr to the memory's address width.
type MemWrite struct {
	Mem  int
	Addr VRef
	Data VRef
	En   VRef
}

// OutputSpec samples one reference as a top-level output port.
type OutputSpec struct {
	Name string
	Type firrtl.Type
	Src  VRef
}

// Spec is a shrinkable circuit description.
type Spec struct {
	Name    string
	Inputs  []PortSpec
	Regs    []RegSpec
	Mems    []MemSpec
	Nodes   []NodeSpec
	RegDrv  []VRef // next-value driver per register
	MemWrs  []MemWrite
	Outputs []OutputSpec
}

// TypeOf returns the type a reference carries before coercion.
func (s *Spec) TypeOf(r VRef) firrtl.Type {
	switch r.Kind {
	case RInput:
		return s.Inputs[r.Idx].Type
	case RReg:
		return s.Regs[r.Idx].Type
	case RNode:
		return s.Nodes[r.Idx].Type
	default:
		if r.Signed {
			return firrtl.SInt(r.Lit.Width)
		}
		return firrtl.UInt(r.Lit.Width)
	}
}

// Clone deep-copies the spec (shrink transformations never mutate their
// receiver).
func (s *Spec) Clone() *Spec {
	c := &Spec{Name: s.Name}
	c.Inputs = append([]PortSpec(nil), s.Inputs...)
	c.Regs = append([]RegSpec(nil), s.Regs...)
	c.Mems = append([]MemSpec(nil), s.Mems...)
	c.Nodes = append([]NodeSpec(nil), s.Nodes...)
	for i := range c.Nodes {
		c.Nodes[i].Args = append([]VRef(nil), c.Nodes[i].Args...)
		c.Nodes[i].ArgTypes = append([]firrtl.Type(nil), c.Nodes[i].ArgTypes...)
		c.Nodes[i].Consts = append([]int(nil), c.Nodes[i].Consts...)
	}
	c.RegDrv = append([]VRef(nil), s.RegDrv...)
	c.MemWrs = append([]MemWrite(nil), s.MemWrs...)
	c.Outputs = append([]OutputSpec(nil), s.Outputs...)
	return c
}

// mapRefs rewrites every reference in place through f.
func (s *Spec) mapRefs(f func(VRef) VRef) {
	for i := range s.Nodes {
		for j := range s.Nodes[i].Args {
			s.Nodes[i].Args[j] = f(s.Nodes[i].Args[j])
		}
	}
	for i := range s.RegDrv {
		s.RegDrv[i] = f(s.RegDrv[i])
	}
	for i := range s.MemWrs {
		s.MemWrs[i].Addr = f(s.MemWrs[i].Addr)
		s.MemWrs[i].Data = f(s.MemWrs[i].Data)
		s.MemWrs[i].En = f(s.MemWrs[i].En)
	}
	for i := range s.Outputs {
		s.Outputs[i].Src = f(s.Outputs[i].Src)
	}
}

// RemoveNode returns a copy with node i replaced by a zero literal at every
// use and deleted.
func (s *Spec) RemoveNode(i int) *Spec {
	c := s.Clone()
	zero := ZeroRef(s.Nodes[i].Type)
	c.mapRefs(func(r VRef) VRef {
		if r.Kind != RNode {
			return r
		}
		switch {
		case r.Idx == i:
			return zero
		case r.Idx > i:
			r.Idx--
		}
		return r
	})
	c.Nodes = append(c.Nodes[:i:i], c.Nodes[i+1:]...)
	return c
}

// RemoveReg returns a copy with register i replaced by a zero literal at
// every read and deleted (its driver connect goes with it).
func (s *Spec) RemoveReg(i int) *Spec {
	c := s.Clone()
	zero := ZeroRef(s.Regs[i].Type)
	c.mapRefs(func(r VRef) VRef {
		if r.Kind != RReg {
			return r
		}
		switch {
		case r.Idx == i:
			return zero
		case r.Idx > i:
			r.Idx--
		}
		return r
	})
	c.Regs = append(c.Regs[:i:i], c.Regs[i+1:]...)
	c.RegDrv = append(c.RegDrv[:i:i], c.RegDrv[i+1:]...)
	return c
}

// RemoveInput returns a copy with input i replaced by a zero literal at
// every use and deleted.
func (s *Spec) RemoveInput(i int) *Spec {
	c := s.Clone()
	zero := ZeroRef(s.Inputs[i].Type)
	c.mapRefs(func(r VRef) VRef {
		if r.Kind != RInput {
			return r
		}
		switch {
		case r.Idx == i:
			return zero
		case r.Idx > i:
			r.Idx--
		}
		return r
	})
	c.Inputs = append(c.Inputs[:i:i], c.Inputs[i+1:]...)
	return c
}

// RemoveMem returns a copy without memory i, or nil if a node still reads
// it (remove those nodes first). Its write ports are dropped.
func (s *Spec) RemoveMem(i int) *Spec {
	for j := range s.Nodes {
		if s.Nodes[j].Kind == NMemRead && s.Nodes[j].Mem == i {
			return nil
		}
	}
	c := s.Clone()
	var wrs []MemWrite
	for _, w := range c.MemWrs {
		if w.Mem == i {
			continue
		}
		if w.Mem > i {
			w.Mem--
		}
		wrs = append(wrs, w)
	}
	c.MemWrs = wrs
	for j := range c.Nodes {
		if c.Nodes[j].Kind == NMemRead && c.Nodes[j].Mem > i {
			c.Nodes[j].Mem--
		}
	}
	c.Mems = append(c.Mems[:i:i], c.Mems[i+1:]...)
	return c
}

// RemoveMemWrite returns a copy without write port i.
func (s *Spec) RemoveMemWrite(i int) *Spec {
	c := s.Clone()
	c.MemWrs = append(c.MemWrs[:i:i], c.MemWrs[i+1:]...)
	return c
}

// RemoveOutput returns a copy without output i, or nil if it is the last
// output (a circuit with no sinks is vacuous).
func (s *Spec) RemoveOutput(i int) *Spec {
	if len(s.Outputs) <= 1 && len(s.RegDrv) == 0 && len(s.MemWrs) == 0 {
		return nil
	}
	c := s.Clone()
	c.Outputs = append(c.Outputs[:i:i], c.Outputs[i+1:]...)
	return c
}

// NarrowReg returns a copy with register i narrowed to width w (its init
// truncates; every use re-coerces).
func (s *Spec) NarrowReg(i, w int) *Spec {
	c := s.Clone()
	c.Regs[i].Type.Width = w
	return c
}

// NarrowInput returns a copy with input i narrowed to width w.
func (s *Spec) NarrowInput(i, w int) *Spec {
	c := s.Clone()
	c.Inputs[i].Type.Width = w
	return c
}

// NarrowOutput returns a copy with output i narrowed to width w.
func (s *Spec) NarrowOutput(i, w int) *Spec {
	c := s.Clone()
	c.Outputs[i].Type.Width = w
	return c
}

// ReplaceNodeWithArg returns a copy with node i deleted and every use of
// it rewired to the node's j-th argument (use sites re-coerce, so the
// substitution is always type-correct). Unlike RemoveNode this preserves a
// live data path, which matters when a failure needs non-zero values.
func (s *Spec) ReplaceNodeWithArg(i, j int) *Spec {
	if j >= len(s.Nodes[i].Args) {
		return nil
	}
	target := s.Nodes[i].Args[j] // args always point strictly earlier
	c := s.Clone()
	c.mapRefs(func(r VRef) VRef {
		if r.Kind != RNode {
			return r
		}
		switch {
		case r.Idx == i:
			return target
		case r.Idx > i:
			r.Idx--
		}
		return r
	})
	c.Nodes = append(c.Nodes[:i:i], c.Nodes[i+1:]...)
	return c
}

// RetypeNodeArg returns a copy with node i's j-th argument type set to t
// and the node's result type re-inferred, or nil if the op rejects the new
// signature. Snapping an argument type to its operand's natural type
// deletes the pad/bits coercion vertices the emitter would otherwise
// produce.
func (s *Spec) RetypeNodeArg(i, j int, t firrtl.Type) *Spec {
	n := &s.Nodes[i]
	if n.Kind != NPrim || j >= len(n.ArgTypes) || n.ArgTypes[j] == t {
		return nil
	}
	c := s.Clone()
	c.Nodes[i].ArgTypes[j] = t
	rt, err := firrtl.InferType(c.Nodes[i].Op, c.Nodes[i].ArgTypes, c.Nodes[i].Consts)
	if err != nil {
		return nil
	}
	c.Nodes[i].Type = rt
	return c
}

// FitLits returns a copy in which every literal operand is re-emitted at
// exactly the type its use site coerces to (value truncated or
// zero-extended), turning the coercion into an identity and deleting its
// vertices.
func (s *Spec) FitLits() *Spec {
	c := s.Clone()
	fit := func(r VRef, t firrtl.Type) VRef {
		if r.Kind != RLit {
			return r
		}
		signed := t.Kind == firrtl.KSInt
		if r.Lit.Width == t.Width && r.Signed == signed {
			return r
		}
		return VRef{Kind: RLit, Lit: bitvec.ZeroExtend(t.Width, r.Lit), Signed: signed}
	}
	for i := range c.Nodes {
		for j := range c.Nodes[i].Args {
			c.Nodes[i].Args[j] = fit(c.Nodes[i].Args[j], c.Nodes[i].ArgTypes[j])
		}
	}
	for i := range c.RegDrv {
		c.RegDrv[i] = fit(c.RegDrv[i], c.Regs[i].Type)
	}
	for i := range c.MemWrs {
		m := c.Mems[c.MemWrs[i].Mem]
		c.MemWrs[i].Addr = fit(c.MemWrs[i].Addr, firrtl.UInt(AddrWidth(m.Depth)))
		c.MemWrs[i].Data = fit(c.MemWrs[i].Data, firrtl.UInt(m.Width))
		c.MemWrs[i].En = fit(c.MemWrs[i].En, firrtl.UInt(1))
	}
	for i := range c.Outputs {
		c.Outputs[i].Src = fit(c.Outputs[i].Src, c.Outputs[i].Type)
	}
	return c
}

// used reports, for every node, whether anything references it.
func (s *Spec) used() []bool {
	u := make([]bool, len(s.Nodes))
	mark := func(r VRef) VRef {
		if r.Kind == RNode {
			u[r.Idx] = true
		}
		return r
	}
	s.mapRefs(mark)
	return u
}

// DropDeadNodes returns a copy with every unreferenced node removed
// (iterating to a fixpoint) and the number removed. Dead nodes are pruned
// by cgraph anyway, so this is always behavior-preserving.
func (s *Spec) DropDeadNodes() (*Spec, int) {
	cur, removed := s, 0
	for {
		u := cur.used()
		victim := -1
		for i := len(u) - 1; i >= 0; i-- {
			if !u[i] {
				victim = i
				break
			}
		}
		if victim < 0 {
			return cur, removed
		}
		cur = cur.RemoveNode(victim)
		removed++
	}
}

// Counts summarizes the spec's size for logging.
func (s *Spec) Counts() string {
	return fmt.Sprintf("%d in, %d regs, %d mems, %d nodes, %d wr, %d out",
		len(s.Inputs), len(s.Regs), len(s.Mems), len(s.Nodes), len(s.MemWrs), len(s.Outputs))
}
