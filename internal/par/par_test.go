package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatalf("Workers(<=0) must be >= 1")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		p := NewPool(w)
		const n = 1000
		hits := make([]int32, n)
		p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d index %d ran %d times", w, i, h)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	p := NewPool(8)
	e3 := errors.New("e3")
	e7 := errors.New("e7")
	err := p.ForEachErr(10, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("got %v, want lowest-index error e3", err)
	}
	if err := p.ForEachErr(4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestChunksPartitionRange(t *testing.T) {
	for _, w := range []int{1, 3, 16} {
		p := NewPool(w)
		const n = 103
		hits := make([]int32, n)
		p.Chunks(n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d index %d covered %d times", w, i, h)
			}
		}
	}
}

func TestDoRunsBoth(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := NewPool(w)
		var a, b atomic.Bool
		p.Do(func() { a.Store(true) }, func() { b.Store(true) })
		if !a.Load() || !b.Load() {
			t.Fatalf("workers=%d: Do skipped a branch", w)
		}
	}
}

// Nested fan-out must not deadlock even when the goroutine budget is
// exhausted (tasks fall back to inline execution).
func TestNestedForEachNoDeadlock(t *testing.T) {
	p := NewPool(4)
	var total atomic.Int64
	p.ForEach(8, func(int) {
		p.ForEach(8, func(int) {
			p.Do(func() { total.Add(1) }, func() { total.Add(1) })
		})
	})
	if total.Load() != 8*8*2 {
		t.Fatalf("total = %d", total.Load())
	}
}

func TestDeriveDeterministicAndSpread(t *testing.T) {
	if Derive(1, 2, 3) != Derive(1, 2, 3) {
		t.Fatal("Derive is not deterministic")
	}
	seen := map[int64]string{}
	for base := int64(0); base < 8; base++ {
		for br := int64(0); br < 64; br++ {
			s := Derive(base, br)
			key := fmt.Sprintf("base=%d branch=%d", base, br)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s", prev, key)
			}
			seen[s] = key
		}
	}
	if Derive(5, 1) == Derive(5, 2) {
		t.Fatal("sibling branches share a seed")
	}
	if Derive(5) == Derive(6) {
		t.Fatal("distinct bases share a seed")
	}
}

func TestSemAdmission(t *testing.T) {
	s := NewSem(2)
	if s.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", s.Cap())
	}
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("could not fill an empty semaphore")
	}
	if s.TryAcquire() {
		t.Fatal("acquired beyond capacity")
	}
	if s.Held() != 2 {
		t.Fatalf("Held = %d, want 2", s.Held())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("could not re-acquire a released slot")
	}
	s.Release()
	s.Release()
	if s.Held() != 0 {
		t.Fatalf("Held = %d, want 0", s.Held())
	}
}

func TestSemReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	NewSem(1).Release()
}

func TestSemMinimumCapacity(t *testing.T) {
	if got := NewSem(0).Cap(); got != 1 {
		t.Fatalf("NewSem(0).Cap() = %d, want 1", got)
	}
	if got := NewSem(-5).Cap(); got != 1 {
		t.Fatalf("NewSem(-5).Cap() = %d, want 1", got)
	}
}
