package par

import (
	"fmt"
	"net"
)

// ReserveLoopback binds n TCP listeners on kernel-assigned loopback ports
// and returns them with their addresses. Because each port is allocated by
// bind(2) and the listener is handed to the caller still open, there is no
// probe-then-bind window — the cluster test fixture and the CI cluster-smoke
// job can bring up an N-node fleet with zero chance of a port collision,
// which ad-hoc "pick a random port and hope" allocation cannot promise.
// On any error every already-bound listener is closed.
func ReserveLoopback(n int) ([]net.Listener, []string, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("par: ReserveLoopback needs n >= 1, got %d", n)
	}
	lns := make([]net.Listener, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, nil, fmt.Errorf("par: reserve loopback port %d/%d: %w", i+1, n, err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return lns, addrs, nil
}
