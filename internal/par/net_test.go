package par

import "testing"

// TestReserveLoopback: n listeners come back bound, open, and all distinct —
// the no-collision property the cluster fixture depends on.
func TestReserveLoopback(t *testing.T) {
	const n = 8
	lns, addrs, err := ReserveLoopback(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, l := range lns {
			l.Close()
		}
	}()
	if len(lns) != n || len(addrs) != n {
		t.Fatalf("got %d listeners / %d addrs, want %d", len(lns), len(addrs), n)
	}
	seen := map[string]bool{}
	for i, a := range addrs {
		if seen[a] {
			t.Fatalf("address %s handed out twice", a)
		}
		seen[a] = true
		if got := lns[i].Addr().String(); got != a {
			t.Fatalf("listener %d addr %s, reported %s", i, got, a)
		}
	}
	if _, _, err := ReserveLoopback(0); err == nil {
		t.Fatal("ReserveLoopback(0) succeeded")
	}
}
