// Package par provides the bounded worker-pool primitives used to
// parallelize the partition+compile pipeline (cone traversal, the
// hypergraph partitioner's initial bisections and recursive branches, and
// per-thread code emission).
//
// Everything here is designed so callers stay *bit-identical across worker
// counts*: work items are addressed by index (each task writes only its own
// output slot), recursive branches receive independently derived RNG seed
// streams (Derive), and merges happen in index order on the caller's side.
// A Pool with one worker runs every task inline on the calling goroutine,
// so the serial path and the parallel path execute exactly the same code.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values >= 1 are returned
// unchanged; zero or negative means "use all available parallelism"
// (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded parallelism budget. The zero value is not usable; use
// NewPool. Pools are cheap (a channel and an int) and safe for concurrent
// use; nested calls (e.g. ForEach inside Do) simply run inline once the
// goroutine budget is spent, so recursion can never explode.
type Pool struct {
	workers int
	// tokens holds the budget of *extra* goroutines the pool may start
	// beyond the calling one; nil when workers == 1.
	tokens chan struct{}
}

// NewPool creates a pool with the given worker count (see Workers for the
// meaning of n <= 0).
func NewPool(n int) *Pool {
	w := Workers(n)
	p := &Pool{workers: w}
	if w > 1 {
		p.tokens = make(chan struct{}, w-1)
	}
	return p
}

// NumWorkers returns the pool's resolved worker count.
func (p *Pool) NumWorkers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n), using up to NumWorkers
// goroutines (including the caller). It returns when all calls complete.
// fn must confine its writes to data owned by index i; under that contract
// results are independent of scheduling and worker count.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	extra := p.spawnBudget(n)
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < extra; g++ {
		wg.Add(1)
		go func() {
			defer func() { <-p.tokens; wg.Done() }()
			work()
		}()
	}
	work()
	wg.Wait()
}

// ForEachErr is ForEach for fallible tasks. Every index runs regardless of
// other indices' failures; the error of the lowest failing index is
// returned, which keeps error reporting deterministic under any schedule.
func (p *Pool) ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	p.ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Chunks splits [0, n) into up to NumWorkers contiguous ranges and runs
// fn(lo, hi) for each, possibly concurrently. Use it when tasks want
// per-worker scratch state amortized over many indices.
func (p *Pool) Chunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	p.ForEach(chunks, func(c int) {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		fn(lo, hi)
	})
}

// Do runs a and b, concurrently when the pool has budget for an extra
// goroutine and inline otherwise. It is the fork point for parallel
// recursion (e.g. the two branches of a recursive bisection).
func (p *Pool) Do(a, b func()) {
	if p.tokens != nil {
		select {
		case p.tokens <- struct{}{}:
			done := make(chan struct{})
			go func() {
				defer func() { <-p.tokens; close(done) }()
				a()
			}()
			b()
			<-done
			return
		default:
		}
	}
	a()
	b()
}

// spawnBudget acquires up to min(workers-1, n-1) goroutine tokens and
// returns how many it got. ForEach releases them as its goroutines exit.
func (p *Pool) spawnBudget(n int) int {
	if p.tokens == nil || n <= 1 {
		return 0
	}
	want := p.workers - 1
	if want > n-1 {
		want = n - 1
	}
	got := 0
	for ; got < want; got++ {
		select {
		case p.tokens <- struct{}{}:
		default:
			return got
		}
	}
	return got
}

// Sem is a hard-bounded counting semaphore for admission control: unlike
// Pool (which degrades to inline execution when its budget is spent), a
// Sem rejects work outright so callers can shed load instead of queueing
// it unboundedly — the 429/503 half of the serving story.
type Sem struct {
	slots chan struct{}
}

// NewSem creates a semaphore admitting at most n concurrent holders
// (n < 1 is treated as 1).
func NewSem(n int) *Sem {
	if n < 1 {
		n = 1
	}
	return &Sem{slots: make(chan struct{}, n)}
}

// Cap returns the semaphore's capacity.
func (s *Sem) Cap() int { return cap(s.slots) }

// Held returns the number of currently held slots (a racy snapshot, for
// metrics only).
func (s *Sem) Held() int { return len(s.slots) }

// TryAcquire takes a slot if one is free and reports whether it did.
// Callers that get false must not call Release.
func (s *Sem) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by a successful TryAcquire.
func (s *Sem) Release() {
	select {
	case <-s.slots:
	default:
		panic("par: Sem.Release without matching TryAcquire")
	}
}

// Derive maps a base seed and a branch label to a new, statistically
// independent seed via two rounds of SplitMix64 finalization. Deriving the
// per-branch / per-task seeds up front — instead of sharing one sequential
// RNG — is what keeps randomized stages bit-identical no matter how many
// workers execute them, or in what order.
func Derive(base int64, branch ...int64) int64 {
	x := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, b := range branch {
		x = mix64(x + 0x9e3779b97f4a7c15 + uint64(b)*0xbf58476d1ce4e5b9)
	}
	return int64(mix64(x))
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
