package report

import (
	"strings"
	"testing"
)

func TestTableStringAlignment(t *testing.T) {
	tbl := NewTable("T", "name", "v")
	tbl.Row("a", 1)
	tbl.Row("longer-name", 123456)
	out := tbl.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "== T ==" {
		t.Errorf("title line = %q", lines[0])
	}
	// Every column is padded to the widest cell, so each value column
	// starts at the same offset on every line.
	wantCol := len("longer-name") + 2
	for i, line := range lines[1:] {
		if i == 0 { // header
			if !strings.HasPrefix(line, "name") {
				t.Errorf("header = %q", line)
			}
		}
		if len(line) < wantCol {
			t.Errorf("line %d shorter than the first column width: %q", i, line)
			continue
		}
	}
	if got := lines[1][:wantCol]; got != "name"+strings.Repeat(" ", wantCol-4) {
		t.Errorf("header column = %q, not padded to widest cell", got)
	}
	if !strings.HasPrefix(lines[2], strings.Repeat("-", len("longer-name"))) {
		t.Errorf("separator = %q", lines[2])
	}
	valCol := lines[3][wantCol:]
	if !strings.HasPrefix(valCol, "1") {
		t.Errorf("row 1 value column = %q, misaligned", valCol)
	}
}

func TestTableStringShortRows(t *testing.T) {
	// A row with fewer cells than headers renders blanks, not a panic.
	tbl := NewTable("", "a", "b", "c")
	tbl.Row("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Errorf("short row missing:\n%s", out)
	}
	if strings.Contains(out, "== ") {
		t.Errorf("empty title rendered a banner:\n%s", out)
	}
}

func TestRowFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.Row(3.14159265)
	if !strings.Contains(tbl.String(), "3.142") {
		t.Errorf("float not rendered with %%.4g:\n%s", tbl.String())
	}
}

func TestCSVQuoting(t *testing.T) {
	tbl := NewTable("ignored", "plain", "with,comma", "quoted")
	tbl.Row("x", "a,b", `say "hi"`)
	tbl.Row("multi\nline", "ok", "")
	got := tbl.CSV()
	want := "plain,\"with,comma\",quoted\n" +
		"x,\"a,b\",\"say \"\"hi\"\"\"\n" +
		"\"multi\nline\",ok,\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, want)
	}
}

func TestCSVPlainCellsUnquoted(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.Row("x", 7)
	if got := tbl.CSV(); got != "a,b\nx,7\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestPct(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0.00%"},
		{0.5, "50.00%"},
		{1, "100.00%"},
		{-0.031, "-3.10%"},
		{1.5, "150.00%"},
	} {
		if got := Pct(tc.in); got != tc.want {
			t.Errorf("Pct(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestF1F2(t *testing.T) {
	if got := F2(3.14159); got != "3.14" {
		t.Errorf("F2 = %q", got)
	}
	if got := F2(-0.005); got != "-0.01" && got != "-0.00" {
		t.Errorf("F2(-0.005) = %q", got)
	}
	if got := F1(2.55); got != "2.5" && got != "2.6" { // ties are platform-rounded
		t.Errorf("F1(2.55) = %q", got)
	}
	if got := F1(0); got != "0.0" {
		t.Errorf("F1(0) = %q", got)
	}
}

func TestSIEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1.0K"},
		{1500, "1.5K"},
		{1e6, "1.0M"},
		{2.5e6, "2.5M"},
		{1e9, "1.0B"},
		{3.2e9, "3.2B"},
		{1e12, "1000.0B"},
		{-1, "-1"},
		{-1500, "-1.5K"},
		{-2.5e6, "-2.5M"},
		{-4e9, "-4.0B"},
	} {
		if got := SI(tc.in); got != tc.want {
			t.Errorf("SI(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
