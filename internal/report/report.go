// Package report renders experiment results as aligned ASCII tables and
// CSV series, the output formats of the benchmark harness (cmd/benchall
// and the bench_test.go targets).
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v (floats with %.4g via F).
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i := 0; i < cols && i < len(r); i++ {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (for plotting).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteString("\n")
	for _, r := range t.rows {
		sb.WriteString(strings.Join(r, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// F2 formats with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F1 formats with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// SI formats a count with engineering suffixes (K/M/B), matching the
// paper's Table 3 style.
func SI(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}
