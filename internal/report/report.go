// Package report renders experiment results as aligned ASCII tables and
// CSV series, the output formats of the benchmark harness (cmd/benchall
// and the bench_test.go targets).
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v (floats with %.4g via F).
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i := 0; i < cols && i < len(r); i++ {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (for plotting). Cells
// containing commas, quotes, or newlines are quoted per RFC 4180 with
// embedded quotes doubled; plain cells are emitted verbatim.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Headers)
	for _, r := range t.rows {
		writeCSVRow(&sb, r)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(csvCell(c))
	}
	sb.WriteString("\n")
}

// csvCell quotes a cell when its content would break the row structure.
func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// F2 formats with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F1 formats with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// F3 formats with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// SI formats a count with engineering suffixes (K/M/B), matching the
// paper's Table 3 style. Negative values keep their sign with the same
// suffix rules applied to the magnitude.
func SI(v float64) string {
	sign := ""
	if v < 0 {
		sign, v = "-", -v
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%s%.1fB", sign, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.1fM", sign, v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%s%.1fK", sign, v/1e3)
	}
	return fmt.Sprintf("%s%.0f", sign, v)
}
