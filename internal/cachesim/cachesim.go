// Package cachesim models processor caches two ways: a trace-driven
// set-associative simulator with LRU replacement, and closed-form
// steady-state hit ratios for the cyclic reference streams a full-cycle RTL
// simulator generates (the same straight-line code re-executes every
// simulated cycle). The analytic forms are validated against the
// trace-driven simulator in the package tests, and the host model
// (internal/hostmodel) is built on them.
package cachesim

import (
	"fmt"
	"math"
)

// Policy selects the replacement policy.
type Policy uint8

// Replacement policies.
const (
	LRU Policy = iota
	// Random replacement: what the analytic cyclic model assumes. Real
	// instruction fetch behaves closer to this than to LRU because of
	// prefetching and associativity conflicts.
	Random
)

// Config describes one cache level.
type Config struct {
	SizeBytes int64
	LineBytes int64
	Ways      int
	Policy    Policy
	// Seed drives random replacement deterministically.
	Seed int64
}

// Lines returns the total line count.
func (c Config) Lines() int64 { return c.SizeBytes / c.LineBytes }

// Sets returns the set count.
func (c Config) Sets() int64 { return c.Lines() / int64(c.Ways) }

// Cache is a trace-driven set-associative cache.
type Cache struct {
	cfg  Config
	sets [][]uint64 // per set: tags in LRU order (front = MRU)
	rng  uint64     // xorshift state for random replacement

	Accesses uint64
	Misses   uint64
}

// New creates an empty cache. The configuration must be internally
// consistent (size divisible by line size and associativity).
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: bad config %+v", cfg)
	}
	if cfg.SizeBytes%cfg.LineBytes != 0 || cfg.Lines()%int64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cachesim: inconsistent geometry %+v", cfg)
	}
	sets := make([][]uint64, cfg.Sets())
	for i := range sets {
		sets[i] = make([]uint64, 0, cfg.Ways)
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Cache{cfg: cfg, sets: sets, rng: seed}, nil
}

// nextRand is a xorshift64 step.
func (c *Cache) nextRand() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x
}

// Access touches addr, returning true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr / uint64(c.cfg.LineBytes)
	set := line % uint64(c.cfg.Sets())
	tag := line / uint64(c.cfg.Sets())
	ways := c.sets[set]
	for i, t := range ways {
		if t == tag {
			// Move to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	c.Misses++
	if len(ways) < c.cfg.Ways {
		ways = append(ways, 0)
		copy(ways[1:], ways)
		ways[0] = tag
		c.sets[set] = ways
		return false
	}
	if c.cfg.Policy == Random {
		victim := int(c.nextRand() % uint64(len(ways)))
		ways[victim] = tag
		return false
	}
	copy(ways[1:], ways)
	ways[0] = tag
	c.sets[set] = ways
	return false
}

// MissRatio returns misses/accesses.
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.Accesses = 0
	c.Misses = 0
}

// CyclicHitRatio is the steady-state hit probability for a strictly cyclic
// sweep over a footprint of `footprint` bytes in a cache of `capacity`
// bytes with random replacement.
//
// Under LRU a cyclic sweep larger than the cache thrashes to a 0% hit
// rate; real instruction fetch behaves closer to random replacement
// (associativity conflicts, prefetching). For random replacement, a line
// survives the F/C-line interval between its consecutive uses with
// probability (1−1/C)^misses, giving the fixed point
//
//	h = exp(−(1−h)·F/C)
//
// which this function solves iteratively. The package tests validate it
// against the trace-driven simulator. The sharp knee at F ≈ C is the
// mechanism behind the paper's superlinear speedups: once per-thread code
// fits, the miss rate collapses.
func CyclicHitRatio(capacity, footprint float64) float64 {
	if footprint <= 0 || capacity >= footprint {
		return 1
	}
	if capacity <= 0 {
		return 0
	}
	r := footprint / capacity
	h := 0.0
	for i := 0; i < 200; i++ {
		nh := math.Exp(-(1 - h) * r)
		if nh-h < 1e-9 && h-nh < 1e-9 {
			break
		}
		h = nh
	}
	return h
}

// BTBHitRatio models branch-target-buffer effectiveness for a static
// branch footprint of n branches against a predictor of cap entries, with
// the same capacity form as CyclicHitRatio.
func BTBHitRatio(cap_, n float64) float64 {
	return CyclicHitRatio(cap_, n)
}
