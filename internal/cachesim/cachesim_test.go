package cachesim

import (
	"math/rand"
	"testing"
)

func TestBasicHitMiss(t *testing.T) {
	c, err := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("re-access should hit")
	}
	if !c.Access(63) {
		t.Fatal("same line should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	if c.MissRatio() <= 0 || c.MissRatio() >= 1 {
		t.Fatalf("ratio = %f", c.MissRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped 2-line cache: lines conflict per set.
	c, err := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)   // set 0
	c.Access(128) // set 0, evicts 0
	if c.Access(0) {
		t.Fatal("line 0 should have been evicted")
	}
}

func TestAssociativityHelps(t *testing.T) {
	// Two conflicting lines fit in a 2-way set.
	c, err := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	c.Access(256) // same set, second way
	if !c.Access(0) || !c.Access(256) {
		t.Fatal("both ways should be resident")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{SizeBytes: 100, LineBytes: 64, Ways: 1}); err == nil {
		t.Fatal("expected geometry error")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected bad-config error")
	}
}

func TestReset(t *testing.T) {
	c, _ := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 4})
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("stats should reset")
	}
	if c.Access(0) {
		t.Fatal("contents should reset")
	}
}

// The analytic cyclic model must track the trace-driven simulator across
// the footprint/capacity spectrum for randomized cyclic sweeps (the access
// pattern of a full-cycle simulator with a little address jitter).
func TestCyclicModelMatchesTrace(t *testing.T) {
	const capacity = 32 * 1024
	for _, ratio := range []float64{0.25, 0.5, 1.0, 2.0, 4.0, 8.0} {
		footprint := int64(float64(capacity) * ratio)
		c, err := New(Config{SizeBytes: capacity, LineBytes: 64, Ways: 8, Policy: Random})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(ratio * 100)))
		nLines := footprint / 64
		// Randomized sweep order (fixed per "cycle"), repeated: models
		// straight-line code whose layout is arbitrary but stable.
		order := rng.Perm(int(nLines))
		const rounds = 30
		for r := 0; r < rounds; r++ {
			for _, li := range order {
				c.Access(uint64(li) * 64)
			}
		}
		measuredHit := 1 - c.MissRatio()
		predictedHit := CyclicHitRatio(capacity, float64(footprint))
		diff := measuredHit - predictedHit
		if diff < 0 {
			diff = -diff
		}
		// The approximation should stay within ~15 points of the
		// random-replacement trace.
		if diff > 0.15 {
			t.Errorf("ratio %.2f: measured hit %.3f vs predicted %.3f", ratio, measuredHit, predictedHit)
		}
	}
}

func TestCyclicHitRatioBounds(t *testing.T) {
	if CyclicHitRatio(100, 0) != 1 {
		t.Error("zero footprint must hit")
	}
	if CyclicHitRatio(100, 50) != 1 {
		t.Error("fitting footprint must hit")
	}
	got := CyclicHitRatio(100, 200)
	if got < 0.15 || got > 0.25 {
		t.Errorf("got %f, want ~0.20 (fixed point of h=exp(-2(1-h)))", got)
	}
	// Monotonicity: bigger footprints hit less.
	if CyclicHitRatio(100, 400) >= got {
		t.Errorf("hit ratio should fall with footprint")
	}
	if CyclicHitRatio(0, 100) != 0 {
		t.Error("zero capacity must miss")
	}
}
