package codegen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
)

// fakeArtifact writes a synthetic artifact (arbitrary bytes + consistent
// metadata) so the transfer paths are testable on hosts that cannot build
// plugins at all.
func fakeArtifact(t *testing.T, key string, payload []byte) (so, meta []byte) {
	t.Helper()
	sum := sha256.Sum256(payload)
	m := artifactMeta{
		Key: key, Design: "fake",
		Fingerprint: "0000000000000001",
		Emitter:     EmitterVersion, Toolchain: runtime.Version(), Race: raceEnabled,
		SoSHA256: hex.EncodeToString(sum[:]), SoBytes: int64(len(payload)),
	}
	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	return payload, data
}

func TestArtifactImportExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	key := strings.Repeat("a", 24)
	so, meta := fakeArtifact(t, key, []byte("not really a plugin, but hashed like one"))
	if src.Has(key) {
		t.Fatal("empty store claims to hold the key")
	}
	if err := src.ImportArtifact(key, so, meta); err != nil {
		t.Fatalf("import: %v", err)
	}
	if !src.Has(key) {
		t.Fatal("store does not index the imported artifact")
	}
	// Re-import is a no-op.
	if err := src.ImportArtifact(key, so, meta); err != nil {
		t.Fatalf("re-import: %v", err)
	}

	gotSo, gotMeta, err := src.ExportArtifact(key)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if string(gotSo) != string(so) || string(gotMeta) != string(meta) {
		t.Fatal("export returned different bytes than were imported")
	}

	// A second store (the "peer") installs the exported bytes.
	dst, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ImportArtifact(key, gotSo, gotMeta); err != nil {
		t.Fatalf("peer import: %v", err)
	}
	if !dst.Has(key) {
		t.Fatal("peer store does not index the artifact")
	}
}

func TestArtifactImportRejectsBadBytes(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := strings.Repeat("b", 24)
	so, meta := fakeArtifact(t, key, []byte("plugin bytes"))

	// Corrupted plugin body.
	bad := append([]byte(nil), so...)
	bad[0] ^= 0xff
	if err := s.ImportArtifact(key, bad, meta); err == nil {
		t.Fatal("import accepted plugin bytes that fail the content hash")
	}
	// Metadata naming a different key.
	if err := s.ImportArtifact(strings.Repeat("c", 24), so, meta); err == nil {
		t.Fatal("import accepted metadata naming a different key")
	}
	// Wrong toolchain.
	var m artifactMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		t.Fatal(err)
	}
	m.Toolchain = "go0.0"
	wrongTc, _ := json.Marshal(&m)
	if err := s.ImportArtifact(key, so, wrongTc); err == nil {
		t.Fatal("import accepted an artifact built by a different toolchain")
	}
	if s.Has(key) {
		t.Fatal("rejected imports still landed in the index")
	}
}

func TestArtifactExportDetectsDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := strings.Repeat("d", 24)
	so, meta := fakeArtifact(t, key, []byte("will be corrupted on disk"))
	if err := s.ImportArtifact(key, so, meta); err != nil {
		t.Fatal(err)
	}
	// Flip a byte of the on-disk .so behind the store's back.
	path := fmt.Sprintf("%s/%s.so", dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ExportArtifact(key); err == nil {
		t.Fatal("export shipped bytes that fail the content hash")
	}
	if s.Has(key) {
		t.Fatal("corrupted artifact was not dropped from the index")
	}
}
