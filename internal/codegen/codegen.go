// Package codegen compiles a linked program's per-thread instruction
// streams to native code: each stream is emitted as straight-line Go
// source over the engine's flat unified state slice (constants inlined,
// narrow ops on native uint64, wide and memory ops calling back into small
// runtime helpers), built out of process with `go build -buildmode=plugin`,
// and loaded as drop-in sim.NativeThreadFunc kernels — the compiled-
// simulation backend the RepCut paper gets from emitting C++ per
// partition.
//
// Built artifacts are content-addressed in an on-disk Store keyed by
// program fingerprint + emitter version + toolchain version (+ GOOS/GOARCH
// and the race flag, which must match the host binary for the plugin to
// load), with singleflight build dedup, byte-budget LRU eviction, and
// corrupted-artifact recovery. Every build structurally validates its
// emission 1:1 against the linked source (tvalid.ValidateEmission); the
// printed text is checked dynamically by the difftest oracle column and
// the CI state-hash smoke.
//
// Platforms without plugin support (or hosts built with CGO disabled)
// fail Supported(); callers fall back to the linked interpreter.
package codegen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"

	"repro/internal/sim"
)

// EmitterVersion names the generation scheme and is part of every artifact
// key: bump it whenever emitted code could change for the same program.
const EmitterVersion = "cg1"

// Bug selects a deliberately planted emitter defect, used by the difftest
// mutation suite to prove the codegen oracle column live. A planted bug
// changes only the printed text, never the emission records, so it is
// invisible to the structural ValidateEmission check by design — only
// dynamic differential execution can catch it.
type Bug int

const (
	// BugNone is production behavior.
	BugNone Bug = iota
	// BugDropMask omits the result-mask AND on one maskable narrow op
	// (the scan pass picks the site where the lost mask is most
	// observable) — the classic width-truncation miscompile. On circuits
	// whose masks are all redundant (slot values stay canonical) the
	// defect can be dynamically latent; BugCmpInvert never is.
	BugDropMask
	// BugCmpInvert negates the first emitted comparison condition — a
	// wrong cmpTok mapping. Unlike a dropped mask this flips the result
	// of every evaluation of the site, so a live circuit diverges almost
	// immediately; the difftest mutation column uses it to prove the
	// codegen oracle can actually fail.
	BugCmpInvert
)

// EmitOptions configure one emission.
type EmitOptions struct {
	Bug Bug
}

// Key content-addresses the native artifact for a program under these
// emit options. Everything that can change the built bytes or their
// loadability is included: the program fingerprint, the emitter scheme,
// the exact toolchain, the target platform, whether the host (and so the
// plugin) is race-instrumented, and any planted bug.
func Key(p *sim.Program, o EmitOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "fp=%016x|emitter=%s|go=%s|os=%s|arch=%s|race=%v|bug=%d",
		p.Fingerprint(), EmitterVersion, runtime.Version(), runtime.GOOS, runtime.GOARCH,
		raceEnabled, o.Bug)
	return hex.EncodeToString(h.Sum(nil))[:24]
}
