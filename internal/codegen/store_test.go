package codegen

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sim"
)

// smallProgram compiles a deliberately tiny circuit so store tests pay the
// minimum per-artifact go-build cost.
func smallProgram(t *testing.T, seed int64) *sim.Program {
	t.Helper()
	return compileK(t, buildDesign(t, seed, 25), 1)
}

func TestStoreEvictionTinyBudget(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	dir := t.TempDir()
	s, err := Open(dir, 1) // one byte: everything but the newest must go
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pa := smallProgram(t, 31)
	pb := smallProgram(t, 32)
	keyA, keyB := Key(pa, EmitOptions{}), Key(pb, EmitOptions{})

	infoA, err := s.Ensure(pa, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !infoA.Built {
		t.Fatal("first Ensure did not build")
	}
	// The sole artifact is never evicted even over budget.
	if st := s.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("after A: entries %d evictions %d, want 1/0", st.Entries, st.Evictions)
	}

	infoB, err := s.Ensure(pb, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("after B: evictions %d entries %d, want 1/1", st.Evictions, st.Entries)
	}
	if st.DiskBytes != infoB.Bytes {
		t.Fatalf("disk accounting %d, want B's %d", st.DiskBytes, infoB.Bytes)
	}
	if _, err := os.Stat(filepath.Join(dir, keyA+".so")); !os.IsNotExist(err) {
		t.Fatalf("evicted artifact %s.so still on disk (err %v)", keyA, err)
	}
	if _, err := os.Stat(filepath.Join(dir, keyA+".json")); !os.IsNotExist(err) {
		t.Fatalf("evicted artifact %s.json still on disk (err %v)", keyA, err)
	}
	if _, err := os.Stat(infoB.Path); err != nil {
		t.Fatalf("surviving artifact missing: %v", err)
	}

	// Re-ensuring the evicted key is a miss: it rebuilds and B goes.
	infoA2, err := s.Ensure(pa, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !infoA2.Built {
		t.Fatal("evicted artifact came back without a rebuild")
	}
	st = s.Stats()
	if st.Misses != 3 || st.Evictions != 2 {
		t.Fatalf("misses %d evictions %d, want 3/2", st.Misses, st.Evictions)
	}
	if _, err := os.Stat(filepath.Join(dir, keyB+".so")); !os.IsNotExist(err) {
		t.Fatalf("artifact %s.so should have been evicted (err %v)", keyB, err)
	}
}

func TestStoreDiskAccountingAndReopen(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	dir := t.TempDir()
	s, err := Open(dir, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	pa := smallProgram(t, 41)
	pb := smallProgram(t, 42)
	if _, err := s.Ensure(pa, EmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ensure(pb, EmitOptions{}); err != nil {
		t.Fatal(err)
	}

	// MemBytes-style accounting: the store's notion of disk usage must
	// equal what is actually on disk (.so + .json pairs).
	var onDisk int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		fi, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size()
	}
	st := s.Stats()
	if st.DiskBytes != onDisk {
		t.Fatalf("store accounts %d bytes, disk holds %d", st.DiskBytes, onDisk)
	}
	if st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}
	s.Close()

	// A fresh store over the same dir must index both artifacts and hit.
	s2, err := Open(dir, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2 := s2.Stats()
	if st2.Entries != 2 || st2.DiskBytes != onDisk {
		t.Fatalf("reopened store: entries %d bytes %d, want 2/%d", st2.Entries, st2.DiskBytes, onDisk)
	}
	info, err := s2.Ensure(pa, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Built {
		t.Fatal("reopened store rebuilt an artifact it had on disk")
	}
	if st2 = s2.Stats(); st2.Hits != 1 || st2.Misses != 0 {
		t.Fatalf("reopened store: hits %d misses %d, want 1/0", st2.Hits, st2.Misses)
	}
}

func TestStoreCorruptedArtifactRecovery(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	dir := t.TempDir()
	s, err := Open(dir, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := smallProgram(t, 51)
	info, err := s.Ensure(p, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Flip bytes in the middle of the .so: size is unchanged, only the
	// hash catches it.
	f, err := os.OpenFile(info.Path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("corrupted!"), info.Bytes/4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	info2, err := s.Ensure(p, EmitOptions{})
	if err != nil {
		t.Fatalf("Ensure after corruption: %v", err)
	}
	if !info2.Built {
		t.Fatal("corrupted artifact was served instead of rebuilt")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt count %d, want 1", st.Corrupt)
	}
	if st.Entries != 1 {
		t.Fatalf("entries %d, want 1", st.Entries)
	}
	// Third Ensure is a clean hit over the rebuilt bytes.
	info3, err := s.Ensure(p, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info3.Built {
		t.Fatal("rebuilt artifact did not hit")
	}
}

func TestStoreTruncatedArtifactRecovery(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	dir := t.TempDir()
	s, err := Open(dir, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := smallProgram(t, 52)
	info, err := s.Ensure(p, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(info.Path, info.Bytes/2); err != nil {
		t.Fatal(err)
	}
	info2, err := s.Ensure(p, EmitOptions{})
	if err != nil {
		t.Fatalf("Ensure after truncation: %v", err)
	}
	if !info2.Built {
		t.Fatal("truncated artifact was served instead of rebuilt")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count %d, want 1", st.Corrupt)
	}
}

func TestStoreSingleflight(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	s, err := Open(t.TempDir(), DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := smallProgram(t, 61)

	const n = 6
	var wg sync.WaitGroup
	infos := make([]ArtifactInfo, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = s.Ensure(p, EmitOptions{})
		}(i)
	}
	wg.Wait()
	built := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if infos[i].Built {
			built++
		}
		if infos[i].Path != infos[0].Path {
			t.Fatalf("goroutine %d got path %s, want %s", i, infos[i].Path, infos[0].Path)
		}
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses %d, want 1 (singleflight)", st.Misses)
	}
	if built != 1 {
		t.Fatalf("%d callers report Built, want exactly 1", built)
	}
}

func TestStoreOrphanedMetaCleanup(t *testing.T) {
	dir := t.TempDir()
	// A .json with no .so is a crashed half-install: scan must drop it.
	orphan := filepath.Join(dir, "deadbeefdeadbeefdeadbeef.json")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "tmp-deadbeef-123")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.Entries != 0 || st.DiskBytes != 0 {
		t.Fatalf("orphans counted: entries %d bytes %d", st.Entries, st.DiskBytes)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned meta survived scan")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover tmp build dir survived scan")
	}
}
