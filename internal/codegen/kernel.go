package codegen

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"plugin"
	"sync"
	"time"

	"repro/internal/sim"
)

// Kernel is a loaded native artifact: one eval function per thread, ready
// for sim.Engine.InstallNative. Kernels are process-pinned — the Go
// runtime never unloads a plugin — so they live in a package-level
// registry keyed by artifact key and every Store in the process shares
// them; the registry also guarantees one dlopen per key, which the plugin
// runtime requires (reopening a replaced file under the same pluginpath
// is an error).
type Kernel struct {
	Key         string
	Threads     []sim.NativeThreadFunc
	Fingerprint uint64
	// Built reports whether this process built the artifact (false: disk
	// or registry hit); BuildTime is the compile wall time when Built.
	Built     bool
	BuildTime time.Duration
}

var (
	kernelMu sync.Mutex
	kernels  = map[string]*Kernel{}
)

// loadKernel opens the plugin at path and type-checks its exported
// surface. wantFP != 0 additionally pins the embedded program fingerprint.
// The registry makes repeated loads of one key free and safe.
//
// The dlopen goes through a private unique copy of the artifact, never
// the artifact path itself: plugin.Open caches a failed open per realpath
// forever ("previous failure"), and a load that dies during symbol fill
// leaves a placeholder that blocks every later open of that path — so a
// fixed content-addressed path must not be reopened after a failed
// attempt (e.g. a corrupt artifact that is then rebuilt in place). The
// copy is unlinked right after the open; a successful dlopen keeps its
// mapping without the name.
func loadKernel(key, path string, wantFP uint64) (*Kernel, error) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if k, ok := kernels[key]; ok {
		return k, nil
	}
	tmpSo, err := copyToTemp(path, key)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	pl, err := plugin.Open(tmpSo)
	os.Remove(tmpSo)
	if err != nil {
		return nil, fmt.Errorf("codegen: open %s: %w", path, err)
	}
	sym, err := pl.Lookup("Threads")
	if err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", path, err)
	}
	fns, ok := sym.(*[]sim.NativeThreadFunc)
	if !ok {
		return nil, fmt.Errorf("codegen: %s: Threads has type %T, ABI mismatch", path, sym)
	}
	fpSym, err := pl.Lookup("Fingerprint")
	if err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", path, err)
	}
	fp, ok := fpSym.(*uint64)
	if !ok {
		return nil, fmt.Errorf("codegen: %s: Fingerprint has type %T", path, fpSym)
	}
	if wantFP != 0 && *fp != wantFP {
		return nil, fmt.Errorf("codegen: %s: kernel fingerprint %#x, program has %#x", path, *fp, wantFP)
	}
	emSym, err := pl.Lookup("Emitter")
	if err != nil {
		return nil, fmt.Errorf("codegen: %s: %w", path, err)
	}
	if em, ok := emSym.(*string); !ok || *em != EmitterVersion {
		return nil, fmt.Errorf("codegen: %s: emitter version mismatch", path)
	}
	k := &Kernel{Key: key, Threads: *fns, Fingerprint: *fp}
	kernels[key] = k
	return k, nil
}

// copyToTemp clones the artifact next to itself under a unique dot-prefixed
// name (same filesystem, so large artifacts stay one cheap write; the
// store's scan sweeps any copies a crashed process left behind).
func copyToTemp(path, key string) (string, error) {
	src, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer src.Close()
	dst, err := os.CreateTemp(filepath.Dir(path), ".load-"+key+"-*.so")
	if err != nil {
		return "", err
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		os.Remove(dst.Name())
		return "", err
	}
	if err := dst.Close(); err != nil {
		os.Remove(dst.Name())
		return "", err
	}
	return dst.Name(), nil
}

// loadedKernels reports how many kernels this process has pinned (metrics
// gauge).
func loadedKernels() int {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	return len(kernels)
}
