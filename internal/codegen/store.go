package codegen

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/verify/tvalid"
)

// Store is the content-addressed on-disk artifact cache for built native
// kernels. Layout is flat: <dir>/<key>.so plus <dir>/<key>.json (artifact
// metadata including the .so's SHA-256, the corruption detector). Builds
// are singleflighted per key; disk usage is bounded by an LRU byte budget
// (never evicting the newest artifact); a hash mismatch on a hit deletes
// the artifact and rebuilds it. Multiple Stores may point at one dir —
// loaded kernels live in the process-level registry (kernel.go), not in
// the Store.
type Store struct {
	dir    string
	budget int64

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // of *artifact; front = most recent
	byKey   map[string]*list.Element
	flights map[string]*buildFlight
	stats   StoreStats
}

// artifact is one on-disk entry.
type artifact struct {
	key   string
	bytes int64 // .so + .json
}

// buildFlight deduplicates concurrent builds of one key.
type buildFlight struct {
	done chan struct{}
	info ArtifactInfo
	err  error
}

// artifactMeta is the sidecar <key>.json.
type artifactMeta struct {
	Key         string  `json:"key"`
	Design      string  `json:"design"`
	Fingerprint string  `json:"fingerprint"`
	Emitter     string  `json:"emitter"`
	Toolchain   string  `json:"toolchain"`
	Race        bool    `json:"race"`
	Bug         int     `json:"bug,omitempty"`
	SoSHA256    string  `json:"so_sha256"`
	SoBytes     int64   `json:"so_bytes"`
	BuildMs     float64 `json:"build_ms"`
	Instrs      int     `json:"instrs"`
	Inlined     int     `json:"inlined_consts"`
	Chunks      int     `json:"chunks"`
}

// ArtifactInfo describes one ensured artifact.
type ArtifactInfo struct {
	Key       string
	Path      string // the .so
	Bytes     int64  // .so + meta
	Built     bool   // built by this call (false: cache hit)
	BuildTime time.Duration
}

// StoreStats is a point-in-time snapshot of store counters.
type StoreStats struct {
	Hits        int64 // artifact present (disk or already loaded)
	Misses      int64 // artifact built
	BuildErrors int64
	Evictions   int64
	Corrupt     int64 // artifacts found corrupted on disk and recovered
	Entries     int
	DiskBytes   int64
	DiskBudget  int64
	Loaded      int // kernels pinned by this process (all stores)
}

// DefaultBudget bounds a Store opened with budget <= 0.
const DefaultBudget = 1 << 30

// Open scans dir (created if missing) and indexes the artifacts already
// there, ordered for eviction by file modification time. Leftover tmp-*
// build directories from crashed processes are removed.
func Open(dir string, budget int64) (*Store, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Store{
		dir: dir, budget: budget,
		ctx: ctx, cancel: cancel,
		lru:   list.New(),
		byKey: map[string]*list.Element{},

		flights: map[string]*buildFlight{},
	}
	if err := s.scan(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// scan indexes pre-existing artifacts, oldest first so they evict first.
func (s *Store) scan() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	type found struct {
		key   string
		bytes int64
		mtime time.Time
	}
	var arts []found
	for _, de := range ents {
		name := de.Name()
		switch {
		case de.IsDir() && strings.HasPrefix(name, "tmp-"):
			os.RemoveAll(filepath.Join(s.dir, name))
		case !de.IsDir() && strings.HasPrefix(name, ".load-"):
			// Unlinked-after-open load copies; only a crashed process
			// leaves one behind.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, "probe-"):
			key := strings.TrimSuffix(name, ".json")
			metaInfo, err := de.Info()
			if err != nil {
				continue
			}
			soInfo, err := os.Stat(filepath.Join(s.dir, key+".so"))
			if err != nil {
				// Orphaned meta (crashed mid-install): drop it.
				os.Remove(filepath.Join(s.dir, name))
				continue
			}
			arts = append(arts, found{key, metaInfo.Size() + soInfo.Size(), soInfo.ModTime()})
		}
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].mtime.Before(arts[j].mtime) })
	for _, a := range arts {
		e := s.lru.PushFront(&artifact{key: a.key, bytes: a.bytes})
		s.byKey[a.key] = e
		s.bytes += a.bytes
	}
	return nil
}

// Close cancels in-flight builds. Loaded kernels stay valid (plugins never
// unload).
func (s *Store) Close() { s.cancel() }

var (
	sharedMu sync.Mutex
	sharedBy = map[string]*Store{}
)

// Shared returns a process-wide Store over dir, opening it on first use
// (empty dir: the per-user default under the system temp dir). Shared
// stores use the default byte budget and live for the process — callers
// that need a private budget or lifecycle should Open their own.
func Shared(dir string) (*Store, error) {
	if dir == "" {
		dir = filepath.Join(DefaultBaseDir(), "store")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if s, ok := sharedBy[abs]; ok {
		return s, nil
	}
	s, err := Open(abs, 0)
	if err != nil {
		return nil, err
	}
	sharedBy[abs] = s
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.DiskBytes = s.bytes
	st.DiskBudget = s.budget
	st.Loaded = loadedKernels()
	return st
}

// Kernel returns the loaded native kernel for the program, building the
// artifact if the store does not hold it. The fast path (registry hit) is
// lock-cheap and never touches disk.
func (s *Store) Kernel(p *sim.Program, o EmitOptions) (*Kernel, error) {
	if err := Supported(); err != nil {
		return nil, err
	}
	key := Key(p, o)
	kernelMu.Lock()
	k, ok := kernels[key]
	kernelMu.Unlock()
	if ok {
		s.mu.Lock()
		s.stats.Hits++
		if e, ok := s.byKey[key]; ok {
			s.lru.MoveToFront(e)
		}
		s.mu.Unlock()
		return k, nil
	}
	info, err := s.ensure(p, o, key)
	if err != nil {
		return nil, err
	}
	k, err = loadKernel(key, info.Path, p.Fingerprint())
	if err != nil {
		// A plugin that built but will not load (e.g. truncated by a
		// concurrent writer) is treated as corruption: drop and rebuild
		// once.
		s.dropCorrupt(key)
		info, rerr := s.ensure(p, o, key)
		if rerr != nil {
			return nil, err
		}
		if k, rerr = loadKernel(key, info.Path, p.Fingerprint()); rerr != nil {
			return nil, rerr
		}
		k.Built, k.BuildTime = info.Built, info.BuildTime
		return k, nil
	}
	k.Built, k.BuildTime = info.Built, info.BuildTime
	return k, nil
}

// Ensure guarantees the artifact exists on disk (building it if needed)
// without loading it — the disk-only half of Kernel, also used by tests
// exercising eviction and corruption without pinning plugins.
func (s *Store) Ensure(p *sim.Program, o EmitOptions) (ArtifactInfo, error) {
	if err := Supported(); err != nil {
		return ArtifactInfo{}, err
	}
	return s.ensure(p, o, Key(p, o))
}

func (s *Store) ensure(p *sim.Program, o EmitOptions, key string) (ArtifactInfo, error) {
	for {
		s.mu.Lock()
		if e, ok := s.byKey[key]; ok {
			art := e.Value.(*artifact)
			s.lru.MoveToFront(e)
			s.mu.Unlock()
			info, err := s.verifyOnDisk(key, art.bytes)
			if err == nil {
				s.mu.Lock()
				s.stats.Hits++
				s.mu.Unlock()
				return info, nil
			}
			// Corrupted on disk: recover by dropping and rebuilding.
			s.dropCorrupt(key)
			continue
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				return ArtifactInfo{}, f.err
			}
			// Re-check through the hit path so accounting stays truthful.
			continue
		}
		f := &buildFlight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		f.info, f.err = s.build(p, o, key)
		s.mu.Lock()
		delete(s.flights, key)
		if f.err == nil {
			e := s.lru.PushFront(&artifact{key: key, bytes: f.info.Bytes})
			s.byKey[key] = e
			s.bytes += f.info.Bytes
			s.stats.Misses++
			s.evictLocked(key)
		} else {
			s.stats.BuildErrors++
		}
		s.mu.Unlock()
		close(f.done)
		return f.info, f.err
	}
}

// verifyOnDisk re-hashes the artifact against its metadata.
func (s *Store) verifyOnDisk(key string, bytes int64) (ArtifactInfo, error) {
	var m artifactMeta
	data, err := os.ReadFile(s.metaPath(key))
	if err != nil {
		return ArtifactInfo{}, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return ArtifactInfo{}, err
	}
	sum, n, err := sha256File(s.soPath(key))
	if err != nil {
		return ArtifactInfo{}, err
	}
	if sum != m.SoSHA256 || n != m.SoBytes {
		return ArtifactInfo{}, fmt.Errorf("codegen: artifact %s corrupted on disk", key)
	}
	return ArtifactInfo{Key: key, Path: s.soPath(key), Bytes: bytes}, nil
}

// dropCorrupt removes a damaged artifact from the index and disk.
func (s *Store) dropCorrupt(key string) {
	s.mu.Lock()
	if e, ok := s.byKey[key]; ok {
		s.bytes -= e.Value.(*artifact).bytes
		s.lru.Remove(e)
		delete(s.byKey, key)
	}
	s.stats.Corrupt++
	s.mu.Unlock()
	os.Remove(s.soPath(key))
	os.Remove(s.metaPath(key))
}

// build emits, validates the emission against its linked source, compiles
// the plugin in a private tmp dir, and atomically installs .so then .json
// (meta last: its presence marks a complete artifact).
func (s *Store) build(p *sim.Program, o EmitOptions, key string) (ArtifactInfo, error) {
	start := time.Now()
	lp := p.Linked()
	em, err := Emit(lp, o)
	if err != nil {
		return ArtifactInfo{}, err
	}
	if res := tvalid.ValidateEmission(lp, em.Records); !res.Valid() {
		return ArtifactInfo{}, res.Err()
	}
	tmp, err := os.MkdirTemp(s.dir, "tmp-"+key+"-")
	if err != nil {
		return ArtifactInfo{}, fmt.Errorf("codegen: %w", err)
	}
	defer os.RemoveAll(tmp)
	builtSo := filepath.Join(tmp, "kernel.so")
	if err := buildPlugin(s.ctx, tmp, em.Source, builtSo, key); err != nil {
		return ArtifactInfo{}, err
	}
	sum, soBytes, err := sha256File(builtSo)
	if err != nil {
		return ArtifactInfo{}, err
	}
	elapsed := time.Since(start)
	meta := artifactMeta{
		Key: key, Design: p.Design,
		Fingerprint: fmt.Sprintf("%016x", p.Fingerprint()),
		Emitter:     EmitterVersion, Toolchain: runtime.Version(), Race: raceEnabled, Bug: int(o.Bug),
		SoSHA256: sum, SoBytes: soBytes,
		BuildMs: float64(elapsed.Microseconds()) / 1000,
		Instrs:  len(em.Records), Inlined: em.Inlined, Chunks: em.Chunks,
	}
	mdata, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return ArtifactInfo{}, err
	}
	if err := os.Rename(builtSo, s.soPath(key)); err != nil {
		return ArtifactInfo{}, fmt.Errorf("codegen: %w", err)
	}
	if err := os.WriteFile(s.metaPath(key), mdata, 0o644); err != nil {
		os.Remove(s.soPath(key))
		return ArtifactInfo{}, fmt.Errorf("codegen: %w", err)
	}
	return ArtifactInfo{
		Key: key, Path: s.soPath(key),
		Bytes: soBytes + int64(len(mdata)),
		Built: true, BuildTime: elapsed,
	}, nil
}

// evictLocked trims LRU artifacts past the byte budget, never evicting
// the artifact named keep (the one just installed). Evicting a loaded
// kernel's files is safe: the mapped plugin outlives its unlinked file.
func (s *Store) evictLocked(keep string) {
	for s.bytes > s.budget && s.lru.Len() > 1 {
		e := s.lru.Back()
		art := e.Value.(*artifact)
		if art.key == keep {
			return
		}
		s.lru.Remove(e)
		delete(s.byKey, art.key)
		s.bytes -= art.bytes
		s.stats.Evictions++
		os.Remove(s.soPath(art.key))
		os.Remove(s.metaPath(art.key))
	}
}

func (s *Store) soPath(key string) string   { return filepath.Join(s.dir, key+".so") }
func (s *Store) metaPath(key string) string { return filepath.Join(s.dir, key+".json") }

// sha256File hashes a file, returning the hex digest and byte length.
func sha256File(path string) (string, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
