//go:build race

package codegen

// raceEnabled mirrors the host binary's race instrumentation. A plugin
// must be built with the same race mode as its host or plugin.Open fails
// with a std-package version mismatch, so the builder passes -race when
// this is set and the flag is part of the artifact key.
const raceEnabled = true
