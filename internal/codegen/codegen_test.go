package codegen

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cgraph"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/genckt"
	"repro/internal/sim"
	"repro/internal/verify/tvalid"
)

func buildDesign(t *testing.T, seed int64, size int) *genckt.Design {
	t.Helper()
	d, err := genckt.Generate(genckt.Config{Seed: seed, Size: size}).Build()
	if err != nil {
		t.Fatalf("genckt build (seed %d): %v", seed, err)
	}
	return d
}

// compileK compiles the design serially (k <= 1) or as a k-way RepCut
// partition. Returns nil when the circuit cannot be cut k ways.
func compileK(t *testing.T, d *genckt.Design, k int) *sim.Program {
	t.Helper()
	specs := sim.SerialSpec(d.Graph)
	if k > 1 {
		if len(d.Graph.Sinks()) < k {
			return nil
		}
		res, err := core.Partition(d.Graph, core.Options{K: k, Seed: 7, Model: costmodel.Default(), Epsilon: 0.1})
		if err != nil {
			return nil
		}
		specs = make([]sim.PartSpec, len(res.Parts))
		for i := range res.Parts {
			specs[i] = sim.PartSpec{Vertices: res.Parts[i].Vertices, Sinks: res.Parts[i].Sinks}
		}
	}
	p, err := sim.Compile(d.Graph, specs, sim.Config{OptLevel: 2})
	if err != nil {
		t.Fatalf("compile k=%d: %v", k, err)
	}
	return p
}

// drive pokes the same pseudo-random stimulus into every engine and steps
// them together, returning per-engine state hashes after each cycle.
func drive(t *testing.T, g *cgraph.Graph, engines []*sim.Engine, seed int64, cycles int) [][]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	hashes := make([][]uint64, len(engines))
	for cyc := 0; cyc < cycles; cyc++ {
		for _, vi := range g.Inputs {
			in := &g.Vs[vi]
			w := bitvec.New(in.Type.Width)
			for j := range w.Words {
				w.Words[j] = rng.Uint64()
			}
			w = bitvec.ZeroExtend(in.Type.Width, w)
			for _, e := range engines {
				if err := e.PokeInputVec(in.Name, w); err != nil {
					t.Fatalf("cycle %d: poke %s: %v", cyc, in.Name, err)
				}
			}
		}
		for i, e := range engines {
			e.Run(1)
			hashes[i] = append(hashes[i], e.StateHash())
		}
	}
	return hashes
}

// TestNativeMatchesLinked is the end-to-end pipeline check: emit, build,
// load, install, and cross-check the native kernel against the linked
// interpreter over the same program — full architectural state hash after
// every cycle, serial and 3-way parallel, several circuit shapes.
func TestNativeMatchesLinked(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	store, err := Open(t.TempDir(), DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for _, tc := range []struct {
		seed int64
		size int
		k    int
	}{
		{seed: 1, size: 40, k: 1},
		{seed: 2, size: 80, k: 1},
		{seed: 3, size: 80, k: 3},
		{seed: 4, size: 120, k: 3},
	} {
		d := buildDesign(t, tc.seed, tc.size)
		p := compileK(t, d, tc.k)
		if p == nil {
			t.Logf("seed %d: skip k=%d (uncuttable)", tc.seed, tc.k)
			continue
		}
		k, err := store.Kernel(p, EmitOptions{})
		if err != nil {
			t.Fatalf("seed %d k=%d: Kernel: %v", tc.seed, tc.k, err)
		}
		if k.Fingerprint != p.Fingerprint() {
			t.Fatalf("seed %d: kernel fingerprint %#x, program %#x", tc.seed, k.Fingerprint, p.Fingerprint())
		}
		linked := sim.NewEngine(p)
		native := sim.NewEngine(p)
		if err := native.InstallNative(k.Threads); err != nil {
			t.Fatalf("seed %d: InstallNative: %v", tc.seed, err)
		}
		if !native.NativeInstalled() {
			t.Fatalf("seed %d: NativeInstalled false after install", tc.seed)
		}
		hashes := drive(t, d.Graph, []*sim.Engine{linked, native}, tc.seed*101, 150)
		for cyc := range hashes[0] {
			if hashes[0][cyc] != hashes[1][cyc] {
				t.Fatalf("seed %d k=%d: state hash diverged at cycle %d: linked %#x native %#x",
					tc.seed, tc.k, cyc, hashes[0][cyc], hashes[1][cyc])
			}
		}
	}
}

// TestHotSwapMidRun installs the native kernel after some interpreted
// cycles and checks the engine's trajectory is unchanged: the kernel
// indexes the same unified state slice evalLinked does, so a swap between
// Run calls must be invisible.
func TestHotSwapMidRun(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	store, err := Open(t.TempDir(), DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	d := buildDesign(t, 11, 90)
	p := compileK(t, d, 1)
	k, err := store.Kernel(p, EmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := sim.NewEngine(p)
	swp := sim.NewEngine(p)
	g := d.Graph
	rng1 := rand.New(rand.NewSource(77))
	rng2 := rand.New(rand.NewSource(77))
	step := func(e *sim.Engine, rng *rand.Rand) {
		for _, vi := range g.Inputs {
			in := &g.Vs[vi]
			w := bitvec.New(in.Type.Width)
			for j := range w.Words {
				w.Words[j] = rng.Uint64()
			}
			w = bitvec.ZeroExtend(in.Type.Width, w)
			if err := e.PokeInputVec(in.Name, w); err != nil {
				t.Fatal(err)
			}
		}
		e.Run(1)
	}
	for cyc := 0; cyc < 120; cyc++ {
		if cyc == 40 {
			if err := swp.InstallNative(k.Threads); err != nil {
				t.Fatalf("hot swap at cycle %d: %v", cyc, err)
			}
		}
		step(ref, rng1)
		step(swp, rng2)
		if hr, hs := ref.StateHash(), swp.StateHash(); hr != hs {
			t.Fatalf("cycle %d: hot-swapped engine diverged: %#x vs %#x", cyc, hr, hs)
		}
	}
}

// TestPlantedBugDiverges proves the planted emitter bug is live: a kernel
// built with BugCmpInvert must diverge from the linked interpreter on at
// least one of a handful of circuits (structural validation cannot see it
// by design — only dynamic comparison can).
func TestPlantedBugDiverges(t *testing.T) {
	if err := Supported(); err != nil {
		t.Skipf("native codegen unsupported here: %v", err)
	}
	store, err := Open(t.TempDir(), DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	diverged := false
	for seed := int64(1); seed <= 5 && !diverged; seed++ {
		d := buildDesign(t, seed, 70)
		p := compileK(t, d, 1)
		em, err := Emit(p.Linked(), EmitOptions{Bug: BugCmpInvert})
		if err != nil {
			t.Logf("seed %d: no bug site: %v", seed, err)
			continue
		}
		if em.BugSite == "" {
			t.Fatalf("seed %d: Emit with Bug succeeded but reported no site", seed)
		}
		k, err := store.Kernel(p, EmitOptions{Bug: BugCmpInvert})
		if err != nil {
			t.Fatalf("seed %d: Kernel(bug): %v", seed, err)
		}
		linked := sim.NewEngine(p)
		buggy := sim.NewEngine(p)
		if err := buggy.InstallNative(k.Threads); err != nil {
			t.Fatal(err)
		}
		hashes := drive(t, d.Graph, []*sim.Engine{linked, buggy}, seed*31, 100)
		for cyc := range hashes[0] {
			if hashes[0][cyc] != hashes[1][cyc] {
				t.Logf("seed %d: planted bug caught at cycle %d (site %s)", seed, cyc, em.BugSite)
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("BugCmpInvert kernel never diverged from the linked interpreter: planted bug is dead")
	}
}

// TestEmissionValidates runs the emitter's structural self-check without
// building anything, so it runs on every platform: the emitted record
// stream must validate 1:1 against the linked program, with and without
// the planted bug (which by design changes only printed text, never
// records).
func TestEmissionValidates(t *testing.T) {
	for _, seed := range []int64{1, 5, 9, 13} {
		d := buildDesign(t, seed, 100)
		for _, k := range []int{1, 3} {
			p := compileK(t, d, k)
			if p == nil {
				continue
			}
			lp := p.Linked()
			for _, bug := range []Bug{BugNone, BugDropMask, BugCmpInvert} {
				em, err := Emit(lp, EmitOptions{Bug: bug})
				if err != nil {
					if bug != BugNone {
						continue // no maskable site on this circuit
					}
					t.Fatalf("seed %d k=%d: Emit: %v", seed, k, err)
				}
				res := tvalid.ValidateEmission(lp, em.Records)
				if !res.Valid() {
					t.Fatalf("seed %d k=%d bug=%d: emission invalid:\n%s", seed, k, bug, res.String())
				}
				if em.Threads != p.NumThreads {
					t.Fatalf("seed %d k=%d: emission has %d threads, program %d", seed, k, em.Threads, p.NumThreads)
				}
			}
		}
	}
}

// TestKeySensitivity: the artifact key must separate programs, emitter
// options, and nothing else a same-process rebuild would share.
func TestKeySensitivity(t *testing.T) {
	d1 := buildDesign(t, 21, 50)
	d2 := buildDesign(t, 22, 50)
	p1 := compileK(t, d1, 1)
	p2 := compileK(t, d2, 1)
	k1 := Key(p1, EmitOptions{})
	if k1 == Key(p2, EmitOptions{}) {
		t.Fatal("distinct programs share an artifact key")
	}
	if k1 == Key(p1, EmitOptions{Bug: BugDropMask}) {
		t.Fatal("planted-bug kernel shares the clean kernel's key")
	}
	if k1 != Key(p1, EmitOptions{}) {
		t.Fatal("key is not deterministic")
	}
	if len(k1) != 24 {
		t.Fatalf("key length %d, want 24", len(k1))
	}
}
