//go:build !race

package codegen

// raceEnabled mirrors the host binary's race instrumentation; see
// race_on.go.
const raceEnabled = false
