package codegen

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Out-of-process plugin builds. The generated source becomes a standalone
// one-file main module (std-only imports), compiled with the same
// toolchain that built this binary:
//
//	go build -buildmode=plugin -o <out>.so .
//
// The module path is repcutkernel/<key>, which makes the plugin's
// identity follow the content address with no extra flags: the go command
// derives both the runtime pluginpath and the exported symbol prefix
// (repcutkernel/<key>.Threads) from it, so the same key always maps to
// the same plugin and distinct keys can never collide. Overriding
// -ldflags=-pluginpath instead does NOT work — it renames the runtime
// identity but not the compiled symbol prefix, and every Lookup fails.
//
// No -trimpath: the host binary is built without it, and plugin.Open
// insists every shared std package hash match exactly — a plugin-only
// -trimpath recompiles std with different build IDs and the load fails
// with "plugin was built with a different version of package ...".
//
// The explicit pluginpath makes the runtime's plugin identity follow the
// content address: the same key always maps to the same (identical)
// plugin, distinct keys can never collide. -race is appended when the host
// is race-instrumented (race_on.go): host and plugin must agree on race
// mode or plugin.Open rejects the std-package build mismatch.

// pluginPathID sanitizes a key for use inside -pluginpath. The linker
// percent-escapes characters like '.' in exported symbol names
// (Fingerprint becomes ...go1%2e24%2e0....Fingerprint) but plugin.Open
// looks symbols up under the raw pluginpath, so any escapable character
// makes every Lookup fail. Artifact keys are lowercase hex and pass
// through; probe keys carry toolchain versions with dots.
func pluginPathID(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, key)
}

// goTool locates the go command, preferring PATH and falling back to the
// running toolchain's GOROOT.
func goTool() (string, error) {
	if p, err := exec.LookPath("go"); err == nil {
		return p, nil
	}
	p := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("codegen: go tool not found in PATH or GOROOT: %w", err)
	}
	return p, nil
}

// buildPlugin writes the module (go.mod + main.go) into dir and compiles
// it to outSo. dir must exist and be private to this build.
func buildPlugin(ctx context.Context, dir string, src []byte, outSo, key string) error {
	gomod := "module repcutkernel/" + pluginPathID(key) + "\n\ngo 1.21\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		return err
	}
	gobin, err := goTool()
	if err != nil {
		return err
	}
	args := []string{"build", "-buildmode=plugin"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", outSo, ".")
	cmd := exec.CommandContext(ctx, gobin, args...)
	cmd.Dir = dir
	// Neutralize ambient build configuration: no workspace, no flag
	// injection, cgo on (plugin buildmode needs external linking).
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=", "CGO_ENABLED=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		msg := strings.TrimSpace(string(out))
		if len(msg) > 2000 {
			msg = msg[:2000] + " ..."
		}
		return fmt.Errorf("codegen: plugin build failed: %v: %s", err, msg)
	}
	return nil
}

// probeSrc is a minimal kernel used to decide once per process whether
// plugin building and loading work here at all (linux/amd64 with cgo: yes;
// windows or a static host binary: no).
const probeSrc = `package main

var Fingerprint uint64 = 1

var Emitter = "` + EmitterVersion + `"

var Threads = []func(st []uint64, mems [][]uint64, memwr func(uint32, uint64, uint64), wide func(uint32)){
	func(st []uint64, mems [][]uint64, memwr func(uint32, uint64, uint64), wide func(uint32)) { st[0]++ },
}

func main() {}
`

var (
	probeOnce sync.Once
	probeErr  error
)

// Supported reports whether native codegen works in this environment by
// building and loading a one-op probe kernel once per process. The probe
// artifact is cached on disk under the default base dir (keyed like any
// artifact by toolchain and race mode), so warm processes pay one
// plugin.Open, not a compile.
func Supported() error {
	probeOnce.Do(func() { probeErr = runProbe() })
	return probeErr
}

func runProbe() error {
	key := fmt.Sprintf("probe-%s-%s-%s-race%v-%s",
		EmitterVersion, runtime.Version(), runtime.GOARCH, raceEnabled, runtime.GOOS)
	dir := DefaultBaseDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	so := filepath.Join(dir, key+".so")
	if _, err := os.Stat(so); err != nil {
		tmp, err := os.MkdirTemp(dir, "tmp-probe-")
		if err != nil {
			return fmt.Errorf("codegen: %w", err)
		}
		defer os.RemoveAll(tmp)
		built := filepath.Join(tmp, "probe.so")
		if err := buildPlugin(context.Background(), tmp, []byte(probeSrc), built, key); err != nil {
			return err
		}
		// Atomic publish; a concurrent process racing us installs identical
		// bytes, so either rename winning is fine.
		if err := os.Rename(built, so); err != nil {
			return fmt.Errorf("codegen: %w", err)
		}
	}
	k, err := loadKernel(key, so, 1)
	if err != nil {
		// A stale or corrupt cached probe must not condemn the platform:
		// rebuild once from scratch.
		os.Remove(so)
		tmp, terr := os.MkdirTemp(dir, "tmp-probe-")
		if terr != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		built := filepath.Join(tmp, "probe.so")
		if berr := buildPlugin(context.Background(), tmp, []byte(probeSrc), built, key); berr != nil {
			return berr
		}
		if rerr := os.Rename(built, so); rerr != nil {
			return err
		}
		if k, err = loadKernel(key, so, 1); err != nil {
			return err
		}
	}
	st := []uint64{41}
	k.Threads[0](st, nil, nil, nil)
	if st[0] != 42 {
		return fmt.Errorf("codegen: probe kernel computed %d, want 42", st[0])
	}
	return nil
}

// DefaultBaseDir is where probe artifacts and the default Store live when
// the caller does not name a directory: per-user under the system temp
// dir, so repeated runs share warm artifacts.
func DefaultBaseDir() string {
	return filepath.Join(os.TempDir(), fmt.Sprintf("repcut-codegen-%d", os.Getuid()))
}
