package codegen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Artifact streaming: a repcutd cluster node that compiled a design (and
// built its native kernel) serves the artifact bytes to peers so the fleet
// pays one plugin build per design. Export hands out the .so plus its
// metadata sidecar after re-verifying the content hash — a node never ships
// bytes it cannot prove intact — and Import installs them on the receiving
// store after the same verification, plus a platform gate: a plugin only
// loads into a binary with the identical toolchain, emitter, and race mode,
// all of which the metadata carries.

// ExportArtifact reads a resident artifact's plugin and metadata bytes for
// streaming to a peer. The bytes are verified against the metadata's
// content hash before export; a corrupted artifact is dropped from the
// store and reported, never shipped.
func (s *Store) ExportArtifact(key string) (so, meta []byte, err error) {
	s.mu.Lock()
	e, ok := s.byKey[key]
	if ok {
		s.lru.MoveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("codegen: artifact %s not in store", key)
	}
	meta, err = os.ReadFile(s.metaPath(key))
	if err != nil {
		return nil, nil, fmt.Errorf("codegen: export %s: %w", key, err)
	}
	so, err = os.ReadFile(s.soPath(key))
	if err != nil {
		return nil, nil, fmt.Errorf("codegen: export %s: %w", key, err)
	}
	if err := checkArtifactBytes(key, so, meta); err != nil {
		s.dropCorrupt(key)
		return nil, nil, err
	}
	return so, meta, nil
}

// ImportArtifact installs artifact bytes built elsewhere, after verifying
// the plugin against the metadata's content hash and the metadata against
// this binary's toolchain. Importing a key the store already holds is a
// no-op. The install is atomic in the same sense build() is: the .so is
// renamed into place first, the meta written last.
func (s *Store) ImportArtifact(key string, so, meta []byte) error {
	m, err := parseArtifactMeta(key, so, meta)
	if err != nil {
		return err
	}
	if m.Emitter != EmitterVersion || m.Toolchain != runtime.Version() || m.Race != raceEnabled {
		return fmt.Errorf("codegen: artifact %s built for %s/%s/race=%v, this binary is %s/%s/race=%v",
			key, m.Emitter, m.Toolchain, m.Race, EmitterVersion, runtime.Version(), raceEnabled)
	}
	s.mu.Lock()
	if _, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(s.dir, "tmp-import-*")
	if err != nil {
		return fmt.Errorf("codegen: import %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(so); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("codegen: import %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("codegen: import %s: %w", key, err)
	}
	if err := os.Rename(tmpName, s.soPath(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("codegen: import %s: %w", key, err)
	}
	if err := os.WriteFile(s.metaPath(key), meta, 0o644); err != nil {
		os.Remove(s.soPath(key))
		return fmt.Errorf("codegen: import %s: %w", key, err)
	}
	total := int64(len(so)) + int64(len(meta))
	s.mu.Lock()
	if _, ok := s.byKey[key]; !ok {
		e := s.lru.PushFront(&artifact{key: key, bytes: total})
		s.byKey[key] = e
		s.bytes += total
		s.evictLocked(key)
	}
	s.mu.Unlock()
	return nil
}

// Has reports whether the store currently indexes the key.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byKey[key]
	return ok
}

// parseArtifactMeta decodes and verifies an artifact's metadata against its
// plugin bytes and the expected key.
func parseArtifactMeta(key string, so, meta []byte) (*artifactMeta, error) {
	var m artifactMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		return nil, fmt.Errorf("codegen: artifact %s metadata unreadable: %w", key, err)
	}
	if m.Key != key {
		return nil, fmt.Errorf("codegen: artifact metadata names key %s, expected %s", m.Key, key)
	}
	sum := sha256.Sum256(so)
	if hex.EncodeToString(sum[:]) != m.SoSHA256 || int64(len(so)) != m.SoBytes {
		return nil, fmt.Errorf("codegen: artifact %s plugin bytes do not match metadata hash", key)
	}
	return &m, nil
}

// checkArtifactBytes verifies plugin bytes against their metadata without
// the toolchain gate (export side: the bytes just have to be intact).
func checkArtifactBytes(key string, so, meta []byte) error {
	_, err := parseArtifactMeta(key, so, meta)
	return err
}
