package core

import (
	"reflect"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/sim"
	"repro/internal/verify"
)

// Partitioning must be bit-identical across worker counts and across
// repeated runs: same parts, same per-sink assignment, same metrics.
func TestPartitionWorkerEquivalence(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(48, 5))
	for _, k := range []int{2, 4, 7} {
		base, err := Partition(g, Options{K: k, Seed: 3, Model: costmodel.Default(), Workers: 1})
		if err != nil {
			t.Fatalf("k=%d serial: %v", k, err)
		}
		if err := Verify(g, base); err != nil {
			t.Fatalf("k=%d serial verify: %v", k, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := Partition(g, Options{K: k, Seed: 3, Model: costmodel.Default(), Workers: workers})
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			if !reflect.DeepEqual(base.PartOfSink, got.PartOfSink) {
				t.Fatalf("k=%d workers=%d: sink assignment differs from serial", k, workers)
			}
			for p := range base.Parts {
				if !reflect.DeepEqual(base.Parts[p].Vertices, got.Parts[p].Vertices) {
					t.Fatalf("k=%d workers=%d: part %d vertex list differs", k, workers, p)
				}
				if !reflect.DeepEqual(base.Parts[p].Sinks, got.Parts[p].Sinks) {
					t.Fatalf("k=%d workers=%d: part %d sink list differs", k, workers, p)
				}
				if base.Parts[p].Weight != got.Parts[p].Weight {
					t.Fatalf("k=%d workers=%d: part %d weight differs", k, workers, p)
				}
			}
			if got.CutCost != base.CutCost || got.ReplicatedVertices != base.ReplicatedVertices {
				t.Fatalf("k=%d workers=%d: metrics differ (cut %d vs %d, repl %d vs %d)",
					k, workers, got.CutCost, base.CutCost, got.ReplicatedVertices, base.ReplicatedVertices)
			}
		}
	}
}

// The static verifier is an independent oracle for PR 1's determinism
// claim: for every worker count the compiled program must not only be
// fingerprint-identical but also *provably sound* — race-free, closed, and
// well-scheduled. A worker-count-dependent scheduling bug that happened to
// keep the fingerprint stable would still have to survive a full soundness
// proof to slip through.
func TestWorkersVerifiedByStaticAnalyzer(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(48, 5))
	var baseFP uint64
	for i, workers := range []int{0, 1, 2, 8} {
		res, err := Partition(g, Options{
			K: 4, Seed: 3, Model: costmodel.Default(), Workers: workers, Verify: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parts := make([]sim.PartSpec, len(res.Parts))
		for p := range res.Parts {
			parts[p] = sim.PartSpec{Vertices: res.Parts[p].Vertices, Sinks: res.Parts[p].Sinks}
		}
		prog, err := sim.Compile(g, parts, sim.Config{OptLevel: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d compile: %v", workers, err)
		}
		rep := verify.Program(prog, verify.Options{Graph: g, Parts: parts})
		if err := rep.Err(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fp := prog.Fingerprint()
		if i == 0 {
			baseFP = fp
		} else if fp != baseFP {
			t.Fatalf("workers=%d: fingerprint %#x differs from workers=0 %#x", workers, fp, baseFP)
		}
	}
}

// Default worker count (0 = all cores) must agree with the serial path too.
func TestPartitionDefaultWorkersMatchSerial(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(32, 11))
	serial, err := Partition(g, Options{K: 4, Seed: 8, Model: costmodel.Default(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Partition(g, Options{K: 4, Seed: 8, Model: costmodel.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.PartOfSink, auto.PartOfSink) {
		t.Fatal("default-worker partition differs from serial")
	}
}
