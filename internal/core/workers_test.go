package core

import (
	"reflect"
	"testing"

	"repro/internal/costmodel"
)

// Partitioning must be bit-identical across worker counts and across
// repeated runs: same parts, same per-sink assignment, same metrics.
func TestPartitionWorkerEquivalence(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(48, 5))
	for _, k := range []int{2, 4, 7} {
		base, err := Partition(g, Options{K: k, Seed: 3, Model: costmodel.Default(), Workers: 1})
		if err != nil {
			t.Fatalf("k=%d serial: %v", k, err)
		}
		if err := Verify(g, base); err != nil {
			t.Fatalf("k=%d serial verify: %v", k, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := Partition(g, Options{K: k, Seed: 3, Model: costmodel.Default(), Workers: workers})
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			if !reflect.DeepEqual(base.PartOfSink, got.PartOfSink) {
				t.Fatalf("k=%d workers=%d: sink assignment differs from serial", k, workers)
			}
			for p := range base.Parts {
				if !reflect.DeepEqual(base.Parts[p].Vertices, got.Parts[p].Vertices) {
					t.Fatalf("k=%d workers=%d: part %d vertex list differs", k, workers, p)
				}
				if !reflect.DeepEqual(base.Parts[p].Sinks, got.Parts[p].Sinks) {
					t.Fatalf("k=%d workers=%d: part %d sink list differs", k, workers, p)
				}
				if base.Parts[p].Weight != got.Parts[p].Weight {
					t.Fatalf("k=%d workers=%d: part %d weight differs", k, workers, p)
				}
			}
			if got.CutCost != base.CutCost || got.ReplicatedVertices != base.ReplicatedVertices {
				t.Fatalf("k=%d workers=%d: metrics differ (cut %d vs %d, repl %d vs %d)",
					k, workers, got.CutCost, base.CutCost, got.ReplicatedVertices, base.ReplicatedVertices)
			}
		}
	}
}

// Default worker count (0 = all cores) must agree with the serial path too.
func TestPartitionDefaultWorkersMatchSerial(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(32, 11))
	serial, err := Partition(g, Options{K: 4, Seed: 8, Model: costmodel.Default(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Partition(g, Options{K: 4, Seed: 8, Model: costmodel.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.PartOfSink, auto.PartOfSink) {
		t.Fatal("default-worker partition differs from serial")
	}
}
