// Package core implements RepCut's primary contribution: replication-aided
// partitioning of a circuit DAG into K balanced, fully independent
// partitions (§4 of the paper).
//
// The pipeline is: cone traversal and clustering (internal/cone) → build the
// weighted intersection hypergraph (Formula 1) → K-way partition minimizing
// the replication proxy objective Σ(λ−1)·ω (Formula 2, internal/hypergraph)
// → realize partitions by assigning every cluster to each partition that
// contains one of its cones, replicating clusters whose cones span
// partitions. The result is a set of per-thread vertex lists in topological
// order that share no intra-cycle data dependences: each thread reads only
// global state (register/memory sources) and its own computed values.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cgraph"
	"repro/internal/cone"
	"repro/internal/costmodel"
	"repro/internal/hypergraph"
	"repro/internal/par"
)

// Options configure the partitioner.
type Options struct {
	// K is the number of partitions (threads).
	K int
	// Epsilon is the balance tolerance handed to the hypergraph
	// partitioner (default 0.03).
	Epsilon float64
	// Seed makes partitioning deterministic.
	Seed int64
	// Model predicts per-vertex simulation cost (η). Use
	// costmodel.Unweighted() for the RepCut UW configuration.
	Model costmodel.Model
	// Workers bounds the parallelism of the pipeline itself (cone
	// traversal, cluster weighting, hypergraph partitioning, partition
	// realization). <= 0 means all cores; 1 forces the serial path. The
	// Result is bit-identical for every worker count.
	Workers int
	// Hypergraph overrides advanced partitioner knobs; zero values use
	// defaults.
	Hypergraph hypergraph.Options
	// NoRefine disables the direct k-way FM cleanup that runs over the flat
	// assignment after recursive bisection (hypergraph.KWayRefine). The
	// unrefined partitioner is kept addressable so refined and unrefined
	// results can be compared like-for-like.
	NoRefine bool
	// RefineBug plants the k-way gain-sign defect (tests and difftest
	// liveness checks only — never set it in production).
	RefineBug bool
	// Derep enables the dereplication post-pass: register groups whose
	// common next-value driver is replicated across partitions are demoted
	// to a single committed slot read cross-thread (see derep.go). Only
	// two-phase backends may compile the result — Shared-mode (Verilator
	// style) compilation rejects dereplicated partitions — so the pass is
	// opt-in here and enabled by the top-level repcut API.
	Derep bool
	// Profile, when non-nil, scales the hypergraph vertex weights by the
	// measured per-partition cost of a previous run of the same design and
	// seed (profile-guided rebalance). Weights feeding the partitioner
	// change; the realized partition semantics do not.
	Profile *ProfileFeedback
	// Verify re-checks the realized partitioning (self-containment, unique
	// sink ownership, coverage, topological order) before returning it,
	// turning a latent partitioner bug into a hard error instead of a
	// miscompiled simulator.
	Verify bool
}

// ProfileFeedback carries measured per-partition cost from a previous
// partitioning of the same graph back into the partitioner. PartOfSink is
// the previous Result.PartOfSink (cone IDs are deterministic per graph, so
// they line up); Scales[p] is the measured cost of partition p relative to
// the cost model's prediction, normalized so the mean is 1 (see
// costmodel.ProfileScales). A sink cluster whose previous partition ran
// slow gets proportionally heavier, so the rebalanced partition shifts
// work away from measured-hot threads.
type ProfileFeedback struct {
	PartOfSink []int32
	Scales     []float64
}

// Part is one independent partition.
type Part struct {
	// Vertices lists every vertex this partition executes, replicated
	// clusters included, in topological order.
	Vertices []cgraph.VID
	// Sinks are the sink vertices owned by (unique to) this partition.
	Sinks []cgraph.VID
	// Weight is the predicted execution cost including replication.
	Weight int64
}

// Result is a complete replication-aided partitioning.
type Result struct {
	K        int
	Parts    []Part
	Analysis *cone.Analysis
	// PartOfSink[coneID] is the partition owning that sink.
	PartOfSink []int32
	// PartOf[v] lists the partitions executing vertex v (len>1 means
	// replicated). Sources have no entry.
	PartOf [][]int32

	// TotalWeight is the predicted cost of the whole circuit (η of every
	// partitioned vertex).
	TotalWeight int64
	// CutCost is the proxy objective value Σ_{e∈cut}(|λ(e)|−1)·ω(e)
	// (Formula 2).
	CutCost int64
	// ReplicationCost is Σ_p weight(p) / weight(circuit) − 1 (Formula 3).
	ReplicationCost float64
	// ImbalanceExcl is the imbalance factor of the hypergraph partition
	// before replication (Formula 4 over hypergraph part weights).
	ImbalanceExcl float64
	// ImbalanceIncl is the imbalance factor of the realized partitions
	// including replication.
	ImbalanceIncl float64
	// ReplicatedVertices counts vertices present in more than one
	// partition.
	ReplicatedVertices int

	// Dereps lists the dereplication groups applied by the post-pass
	// (empty unless Options.Derep found profitable groups). Groups are
	// sorted by driver vertex; DerepRegs counts the demoted registers.
	Dereps    []cgraph.DerepGroup
	DerepRegs int
}

// DerepsOf returns the dereplication groups owned by partition p, in
// deterministic (driver-vertex) order — the form sim.PartSpec consumes.
func (r *Result) DerepsOf(p int) []cgraph.DerepGroup {
	var out []cgraph.DerepGroup
	for _, d := range r.Dereps {
		if int(d.Owner) == p {
			out = append(out, d)
		}
	}
	return out
}

// Partition runs the full replication-aided partitioning pipeline on g.
func Partition(g *cgraph.Graph, opt Options) (*Result, error) {
	if opt.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	pool := par.NewPool(opt.Workers)
	an, err := cone.AnalyzeWorkers(g, opt.Workers)
	if err != nil {
		return nil, err
	}
	if len(an.Sinks) == 0 {
		return nil, fmt.Errorf("core: circuit has no sinks to partition")
	}

	// Cluster weights η (predicted simulation cost). Clusters are
	// independent; the total is reduced serially afterwards.
	vcost := make([]int64, g.NumVertices())
	pool.Chunks(g.NumVertices(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			vcost[v] = opt.Model.VertexCost(&g.Vs[v])
		}
	})
	eta := make([]int64, len(an.Clusters))
	pool.Chunks(len(an.Clusters), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			var w int64
			for _, v := range an.Clusters[ci].Members {
				w += vcost[v]
			}
			eta[ci] = w
		}
	})
	var totalWeight int64
	for _, w := range eta {
		totalWeight += w
	}

	// Build the intersection hypergraph (Formula 1): one vertex per sink
	// cluster, one hyperedge per non-sink cluster connecting its cones.
	// Vertex weight = η(v) + Σ_{e∈Γ(v)} η(e)/|e|; edge weight = η(e).
	nCones := len(an.Sinks)
	vWeightF := make([]float64, nCones)
	for cid := 0; cid < nCones; cid++ {
		vWeightF[cid] = float64(eta[an.SinkCluster[cid]])
	}
	type hedge struct {
		cluster int32
		weight  int64
	}
	var hedges []hedge
	for ci := range an.Clusters {
		cl := &an.Clusters[ci]
		if cl.Sink {
			continue
		}
		share := float64(eta[ci]) / float64(len(cl.Cones))
		for _, cid := range cl.Cones {
			vWeightF[cid] += share
		}
		hedges = append(hedges, hedge{cluster: int32(ci), weight: eta[ci]})
	}
	// Profile-guided rebalance: scale each sink cluster's weight by the
	// measured relative cost of the partition that ran it last time. The
	// scales only reshape the proxy problem; realization below is untouched,
	// so the rebalanced partition is semantically interchangeable.
	if pf := opt.Profile; pf != nil && len(pf.PartOfSink) == nCones && len(pf.Scales) > 0 {
		for cid := 0; cid < nCones; cid++ {
			if p := pf.PartOfSink[cid]; int(p) < len(pf.Scales) && pf.Scales[p] > 0 {
				vWeightF[cid] *= pf.Scales[p]
			}
		}
	}
	vWeights := make([]int64, nCones)
	for i, w := range vWeightF {
		vWeights[i] = int64(w + 0.5)
		if vWeights[i] < 1 {
			vWeights[i] = 1
		}
	}
	hg := hypergraph.New(vWeights)
	for _, he := range hedges {
		hg.AddEdge(he.weight, an.Clusters[he.cluster].Cones)
	}
	hg.Finish()

	hopt := opt.Hypergraph
	hopt.K = opt.K
	hopt.Epsilon = opt.Epsilon
	hopt.Seed = opt.Seed
	if hopt.Workers == 0 {
		hopt.Workers = opt.Workers
	}
	if hopt.InitRuns == 0 {
		hopt.InitRuns = 24
	}
	if hopt.MaxFMPasses == 0 {
		hopt.MaxFMPasses = 6
	}
	hopt.SkipKWay = hopt.SkipKWay || opt.NoRefine
	hopt.KWayBug = hopt.KWayBug || opt.RefineBug
	hr, err := hypergraph.Partition(hg, hopt)
	if err != nil {
		return nil, err
	}

	res, err := realize(g, an, eta, totalWeight, hr, opt.K, pool)
	if err != nil {
		return nil, err
	}
	if opt.Derep {
		dereplicate(g, an, eta, vcost, res, pool)
	}
	if opt.Verify {
		if err := Verify(g, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// realize turns a sink-cluster partition into per-thread vertex lists,
// replicating shared clusters, and computes all cost metrics.
func realize(g *cgraph.Graph, an *cone.Analysis, eta []int64, totalWeight int64,
	hr *hypergraph.Result, k int, pool *par.Pool) (*Result, error) {

	res := &Result{
		K:             k,
		Parts:         make([]Part, k),
		Analysis:      an,
		PartOfSink:    hr.Part,
		PartOf:        make([][]int32, g.NumVertices()),
		TotalWeight:   totalWeight,
		ImbalanceExcl: hr.ImbalanceFactor(),
	}

	// Assign each cluster to the distinct partitions of its cones.
	partsOfCluster := make([][]int32, len(an.Clusters))
	seen := make([]int32, k)
	for i := range seen {
		seen[i] = -1
	}
	for ci := range an.Clusters {
		cl := &an.Clusters[ci]
		var parts []int32
		for _, cid := range cl.Cones {
			p := hr.Part[cid]
			if seen[p] != int32(ci) {
				seen[p] = int32(ci)
				parts = append(parts, p)
			}
		}
		sort.Slice(parts, func(a, b int) bool { return parts[a] < parts[b] })
		partsOfCluster[ci] = parts
		if len(parts) > 1 {
			res.ReplicatedVertices += len(cl.Members)
			res.CutCost += int64(len(parts)-1) * eta[ci]
		}
		for _, p := range parts {
			res.Parts[p].Weight += eta[ci]
			res.Parts[p].Vertices = append(res.Parts[p].Vertices, cl.Members...)
		}
		for _, v := range cl.Members {
			res.PartOf[v] = parts
		}
	}

	// Owned sinks per partition.
	for cid, s := range an.Sinks {
		res.Parts[hr.Part[cid]].Sinks = append(res.Parts[hr.Part[cid]].Sinks, s)
	}

	// Topologically order each partition's vertex list. Partitions sort
	// independently; with replication these sorts dominate realization on
	// large designs, so they fan out over the pool.
	pos := make([]int32, g.NumVertices())
	for i, v := range g.Topo {
		pos[v] = int32(i)
	}
	pool.ForEach(len(res.Parts), func(p int) {
		vs := res.Parts[p].Vertices
		sort.Slice(vs, func(a, b int) bool { return pos[vs[a]] < pos[vs[b]] })
	})

	// Metrics.
	var sumPart, maxPart int64
	for p := range res.Parts {
		sumPart += res.Parts[p].Weight
		if res.Parts[p].Weight > maxPart {
			maxPart = res.Parts[p].Weight
		}
	}
	if totalWeight > 0 {
		res.ReplicationCost = float64(sumPart)/float64(totalWeight) - 1
	}
	avg := float64(sumPart) / float64(k)
	if avg > 0 {
		res.ImbalanceIncl = (float64(maxPart) - avg) / avg
	}
	return res, nil
}

// Verify checks the structural invariants of a partitioning:
//
//  1. every partition is self-contained: all non-source predecessors of its
//     vertices are in the partition;
//  2. every sink belongs to exactly one partition;
//  3. every non-source vertex appears in at least one partition;
//  4. partition vertex lists are topologically ordered.
//
// It is used by tests and exposed for downstream assertions.
func Verify(g *cgraph.Graph, res *Result) error {
	for p := range res.Parts {
		in := make(map[cgraph.VID]int, len(res.Parts[p].Vertices))
		for i, v := range res.Parts[p].Vertices {
			if _, dup := in[v]; dup {
				return fmt.Errorf("part %d: duplicate vertex %d", p, v)
			}
			in[v] = i
		}
		for _, v := range res.Parts[p].Vertices {
			for _, pr := range g.Preds[v] {
				if g.Vs[pr].Kind.IsSource() {
					continue
				}
				pi, ok := in[pr]
				if !ok {
					return fmt.Errorf("part %d: vertex %s missing predecessor %s",
						p, g.Vs[v].Name, g.Vs[pr].Name)
				}
				if pi >= in[v] {
					return fmt.Errorf("part %d: %s scheduled before predecessor %s",
						p, g.Vs[v].Name, g.Vs[pr].Name)
				}
			}
		}
	}
	// Demoted register writes are executed by no partition: their value is
	// the committed slot of the group's driver vertex instead.
	demoted := map[cgraph.VID]bool{}
	for _, d := range res.Dereps {
		if int(d.Owner) < 0 || int(d.Owner) >= len(res.Parts) {
			return fmt.Errorf("derep group of vertex %d has invalid owner %d", d.U, d.Owner)
		}
		for _, ri := range d.Regs {
			if int(ri) >= len(g.Regs) {
				return fmt.Errorf("derep group of vertex %d references register %d out of range", d.U, ri)
			}
			w := g.Regs[ri].Write
			if demoted[w] {
				return fmt.Errorf("register %s demoted twice", g.Regs[ri].Name)
			}
			demoted[w] = true
			if drv := g.Vs[w].Args[0]; drv.V != d.U {
				return fmt.Errorf("register %s demoted to vertex %s, which is not its next-value driver",
					g.Regs[ri].Name, g.Vs[d.U].Name)
			}
		}
	}
	sinkCount := map[cgraph.VID]int{}
	for p := range res.Parts {
		for _, s := range res.Parts[p].Sinks {
			sinkCount[s]++
		}
	}
	for _, s := range g.Sinks() {
		if demoted[s] {
			if sinkCount[s] != 0 {
				return fmt.Errorf("demoted sink %s still owned by %d partitions", g.Vs[s].Name, sinkCount[s])
			}
			continue
		}
		if sinkCount[s] != 1 {
			return fmt.Errorf("sink %s owned by %d partitions", g.Vs[s].Name, sinkCount[s])
		}
	}
	covered := make([]bool, g.NumVertices())
	for p := range res.Parts {
		for _, v := range res.Parts[p].Vertices {
			covered[v] = true
		}
	}
	// Coverage is owed only to live vertices: those reaching a surviving
	// (non-demoted) sink. Logic feeding exclusively demoted register writes
	// is dead — nobody consumes its value once the write is demoted — and
	// must be dropped, not replicated.
	live := make([]bool, g.NumVertices())
	var stack []cgraph.VID
	for _, s := range g.Sinks() {
		if !demoted[s] {
			live[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pr := range g.Preds[v] {
			if !live[pr] {
				live[pr] = true
				stack = append(stack, pr)
			}
		}
	}
	for v := range g.Vs {
		switch {
		case demoted[cgraph.VID(v)] && covered[v]:
			return fmt.Errorf("demoted register write %s still executed by a partition", g.Vs[v].Name)
		case !g.Vs[v].Kind.IsSource() && live[cgraph.VID(v)] && !covered[v]:
			return fmt.Errorf("vertex %s not covered by any partition", g.Vs[v].Name)
		}
	}
	return nil
}
