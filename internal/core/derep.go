package core

import (
	"sort"

	"repro/internal/cgraph"
	"repro/internal/cone"
	"repro/internal/par"
)

// This file implements the dereplication post-pass: the replication-aware
// repartitioning stage that runs after realize().
//
// Full cone replication charges a partition the whole fan-in cone of each
// sink it owns — including the clusters that cone shares with other
// partitions' cones, which every sharing partition recomputes per cycle.
// For a register write sink w with next-value driver U the recomputation is
// avoidable: demote the register, and the partition that owned w drops
// cone(w) entirely while a chosen owner partition commits U's value once
// per cycle into a single shared slot that the register's read vertex
// aliases. The owner is picked to already cover most of U's fan-in, so it
// adds only the small uncovered remainder (typically the register's private
// next-value mux chain); the old partition's shared-cluster replicas whose
// only use was cone(w) disappear — that difference is the pass's profit.
//
// The transformation is race-free under the existing two-phase protocol
// and needs no new synchronization: the slot is written only by the
// owner's commit memcpy (after the evaluation barrier), so during the
// evaluation phase of cycle c every thread reads U@(c−1) — which by the
// register transfer r@c = U@(c−1) is precisely the demoted registers'
// current value. Demotion is sound only across a register boundary
// (retiming); committing a combinational value for same-cycle consumers
// would be one cycle late, which is why eligibility is keyed to register
// writes and the verifier re-proves driver identity per group.

// derepState carries the incremental bookkeeping of the greedy demotion
// loop: per-partition cluster reference counts over the surviving cones,
// per-partition injected vertex sets (the ancestor closures owners take on
// for their groups), and running part weights.
type derepState struct {
	g     *cgraph.Graph
	an    *cone.Analysis
	eta   []int64
	vcost []int64
	k     int

	// cover[p*nCl+ci] counts partition p's surviving cones covering
	// cluster ci (plus one permanent count per owner injection of ci's
	// whole... no — injections are vertex-level and tracked separately).
	cover []int32
	// injected[p] are the vertices partition p executes beyond its covered
	// clusters: ancestor closures of its derep group drivers.
	injected []map[cgraph.VID]bool
	weight   []int64
	// coneClusters[cid] lists the clusters cone cid covers.
	coneClusters [][]int32
}

func (s *derepState) coverAt(p int32, ci int32) int32 {
	return s.cover[int(p)*len(s.an.Clusters)+int(ci)]
}

// ancestors returns u's non-source ancestor closure (including u itself),
// in deterministic (DFS, pred-order) order.
func (s *derepState) ancestors(u cgraph.VID, seen []bool) []cgraph.VID {
	var out []cgraph.VID
	stack := []cgraph.VID{u}
	seen[u] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, pr := range s.g.Preds[v] {
			if !seen[pr] && !s.g.Vs[pr].Kind.IsSource() {
				seen[pr] = true
				stack = append(stack, pr)
			}
		}
	}
	for _, v := range out {
		seen[v] = false
	}
	return out
}

// dereplicate runs the post-pass over a realized partitioning, mutating
// res in place when (and only when) the rebuilt partitioning strictly
// reduces total replicated work. eta is the per-cluster cost and vcost the
// per-vertex cost used by realize; an is the cone analysis the partition
// came from.
func dereplicate(g *cgraph.Graph, an *cone.Analysis, eta, vcost []int64, res *Result, pool *par.Pool) {
	if res.K < 2 {
		return
	}
	nCl := len(an.Clusters)

	// Cone ID of each sink vertex.
	sinkCone := make(map[cgraph.VID]int32, len(an.Sinks))
	for cid, sv := range an.Sinks {
		sinkCone[sv] = int32(cid)
	}

	// Eligibility: narrow register, driven by a non-source vertex of the
	// same width (no sign-extension at the commit, one word to copy).
	type derepCandidate struct {
		reg int32      // index into g.Regs
		u   cgraph.VID // next-value driver
	}
	var cands []derepCandidate
	for ri := range g.Regs {
		r := &g.Regs[ri]
		w := r.Write
		wx := &g.Vs[w]
		if wx.Type.Width > 64 {
			continue
		}
		drv := wx.Args[0]
		if drv.V == cgraph.None {
			continue // literal driver: nothing replicated to save
		}
		u := drv.V
		ux := &g.Vs[u]
		if ux.Kind.IsSource() {
			// A source driver (input or another register's read) holds its
			// *current*-cycle value during eval; committing it would hand
			// readers a value one cycle late. Only computed drivers retime
			// soundly.
			continue
		}
		if ux.Type.Width != wx.Type.Width {
			continue
		}
		cands = append(cands, derepCandidate{reg: int32(ri), u: u})
	}
	if len(cands) == 0 {
		return
	}

	// Group candidates by (driver, initial value): one committed slot per
	// group, so every register in a group must reset to the same value.
	type groupKey struct {
		u    cgraph.VID
		init string
	}
	byKey := map[groupKey][]int32{}
	var keys []groupKey
	for _, c := range cands {
		k := groupKey{u: c.u, init: g.Regs[c.reg].Init.String()}
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], c.reg)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].u != keys[b].u {
			return keys[a].u < keys[b].u
		}
		return keys[a].init < keys[b].init
	})

	// Build the state: per-partition cluster cover counts from the cones.
	st := &derepState{g: g, an: an, eta: eta, vcost: vcost, k: res.K,
		cover: make([]int32, res.K*nCl), injected: make([]map[cgraph.VID]bool, res.K),
		weight: make([]int64, res.K), coneClusters: make([][]int32, len(an.Sinks))}
	for ci := range an.Clusters {
		for _, cid := range an.Clusters[ci].Cones {
			st.coneClusters[cid] = append(st.coneClusters[cid], int32(ci))
		}
	}
	for cid := range an.Sinks {
		p := res.PartOfSink[cid]
		for _, ci := range st.coneClusters[cid] {
			st.cover[int(p)*nCl+int(ci)]++
		}
	}
	for p := 0; p < res.K; p++ {
		st.injected[p] = map[cgraph.VID]bool{}
		st.weight[p] = res.Parts[p].Weight
	}

	// Greedy demotion. Each group is evaluated against the current state:
	// removing its registers' cones drops every cluster whose cover in some
	// partition reaches zero; the owner re-adds the then-uncovered part of
	// the driver's ancestor closure. Positive net profit (beyond the one
	// commit copy the owner pays) commits the demotion permanently;
	// otherwise the state is untouched. Groups are visited in (driver,
	// init) order, so the outcome is deterministic.
	seen := make([]bool, g.NumVertices())
	type delta struct {
		p  int32
		ci int32
	}
	var dereps []cgraph.DerepGroup
	demotedCone := make([]bool, len(an.Sinks))
	demotedW := map[cgraph.VID]bool{}
	for _, key := range keys {
		regs := byKey[key]
		uAnc := st.ancestors(key.u, seen)

		// Simulate removing every register's cone.
		dec := map[delta]int32{}
		order := make([]delta, 0, 16)
		for _, ri := range regs {
			cid := sinkCone[g.Regs[ri].Write]
			p := res.PartOfSink[cid]
			for _, ci := range st.coneClusters[cid] {
				d := delta{p, ci}
				if _, ok := dec[d]; !ok {
					order = append(order, d)
				}
				dec[d]++
			}
		}
		var gain int64
		for _, d := range order {
			if st.coverAt(d.p, d.ci) == dec[d] {
				gain += eta[d.ci]
			}
		}
		// Injected vertices of other groups keep executing even when their
		// cluster's cover drops to zero, so the eta-based gain above
		// overstates those partitions' savings; the final rebuild settles
		// exact weights, and the strict global accept below is the arbiter.

		// Owner choice: the partition whose post-removal uncovered share of
		// the ancestor closure is cheapest (ties: lighter part, lower id).
		bestOwner, bestAdd := int32(-1), int64(0)
		for p := int32(0); p < int32(res.K); p++ {
			var add int64
			for _, v := range uAnc {
				ci := an.ClusterOf[v]
				c := st.coverAt(p, ci)
				if d, ok := dec[delta{p, ci}]; ok {
					c -= d
				}
				if c <= 0 && !st.injected[p][v] {
					add += vcost[v]
				}
			}
			if bestOwner < 0 || add < bestAdd ||
				(add == bestAdd && (st.weight[p] < st.weight[bestOwner] ||
					(st.weight[p] == st.weight[bestOwner] && p < bestOwner))) {
				bestOwner, bestAdd = p, add
			}
		}
		// One extra commit copy per group, priced as the (ClassCopy)
		// register write the demotion removes.
		copyCost := vcost[g.Regs[regs[0]].Write]
		if gain-bestAdd <= copyCost {
			continue
		}

		// Commit: apply the cone removals, inject the ancestor closure.
		for _, d := range order {
			idx := int(d.p)*nCl + int(d.ci)
			if st.cover[idx] == dec[d] {
				st.weight[d.p] -= eta[d.ci]
			}
			st.cover[idx] -= dec[d]
		}
		inj := st.injected[bestOwner]
		for _, v := range uAnc {
			if st.coverAt(bestOwner, an.ClusterOf[v]) <= 0 && !inj[v] {
				inj[v] = true
				st.weight[bestOwner] += vcost[v]
			}
		}
		sorted := append([]int32(nil), regs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		dereps = append(dereps, cgraph.DerepGroup{U: key.u, Owner: bestOwner, Regs: sorted})
		for _, ri := range sorted {
			demotedCone[sinkCone[g.Regs[ri].Write]] = true
			demotedW[g.Regs[ri].Write] = true
		}
	}
	if len(dereps) == 0 {
		return
	}

	// Recompute the injections against the FINAL cover counts: a later
	// group's cone removal can uncover a cluster an earlier injection's
	// closure relied on (the loop-time sets are only weight estimates), and
	// loop-time injections of clusters that stayed covered are duplicates.
	for p := range st.injected {
		st.injected[p] = map[cgraph.VID]bool{}
	}
	for _, d := range dereps {
		inj := st.injected[d.Owner]
		for _, v := range st.ancestors(d.U, seen) {
			if st.coverAt(d.Owner, an.ClusterOf[v]) <= 0 {
				inj[v] = true
			}
		}
	}

	// Rebuild the realized partitioning: a partition executes the members
	// of every cluster it still covers plus its injected ancestor
	// closures, minus the demoted register writes (replaced by the owners'
	// shared-slot commits). Cones are ancestor-closed and injections are
	// ancestor closures, so every partition stays closed.
	k := res.K
	parts := make([]Part, k)
	partOf := make([][]int32, g.NumVertices())
	inPart := make([]map[cgraph.VID]bool, k)
	for p := 0; p < k; p++ {
		inPart[p] = make(map[cgraph.VID]bool, len(res.Parts[p].Vertices))
	}
	for ci := 0; ci < nCl; ci++ {
		for p := 0; p < k; p++ {
			if st.cover[p*nCl+ci] > 0 {
				for _, v := range an.Clusters[ci].Members {
					inPart[p][v] = true
				}
			}
		}
	}
	for p := 0; p < k; p++ {
		for v := range st.injected[p] {
			inPart[p][v] = true
		}
		for v := range inPart[p] {
			if demotedW[v] {
				delete(inPart[p], v)
			}
		}
	}
	var sumAfter, sumBefore int64
	for p := 0; p < k; p++ {
		verts := make([]cgraph.VID, 0, len(inPart[p]))
		for v := range inPart[p] {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(a, b int) bool { return verts[a] < verts[b] })
		parts[p].Vertices = verts
		var w int64
		for _, v := range verts {
			w += vcost[v]
		}
		parts[p].Weight = w
		sumAfter += w
		sumBefore += res.Parts[p].Weight
	}
	if sumAfter >= sumBefore {
		return
	}

	var cutCost int64
	replicated := 0
	for v := 0; v < g.NumVertices(); v++ {
		var ps []int32
		for p := 0; p < k; p++ {
			if inPart[p][cgraph.VID(v)] {
				ps = append(ps, int32(p))
			}
		}
		if len(ps) > 0 {
			partOf[v] = ps
			if len(ps) > 1 {
				replicated++
				cutCost += int64(len(ps)-1) * vcost[v]
			}
		}
	}
	for cid, sv := range an.Sinks {
		if demotedCone[cid] {
			continue
		}
		parts[res.PartOfSink[cid]].Sinks = append(parts[res.PartOfSink[cid]].Sinks, sv)
	}

	pos := make([]int32, g.NumVertices())
	for i, v := range g.Topo {
		pos[v] = int32(i)
	}
	pool.ForEach(k, func(p int) {
		vs := parts[p].Vertices
		sort.Slice(vs, func(a, b int) bool { return pos[vs[a]] < pos[vs[b]] })
	})

	res.Parts = parts
	res.PartOf = partOf
	res.CutCost = cutCost
	res.ReplicatedVertices = replicated
	res.Dereps = dereps
	res.DerepRegs = 0
	for _, d := range dereps {
		res.DerepRegs += len(d.Regs)
	}
	var maxPart int64
	for p := 0; p < k; p++ {
		if parts[p].Weight > maxPart {
			maxPart = parts[p].Weight
		}
	}
	if res.TotalWeight > 0 {
		res.ReplicationCost = float64(sumAfter)/float64(res.TotalWeight) - 1
	}
	if avg := float64(sumAfter) / float64(k); avg > 0 {
		res.ImbalanceIncl = (float64(maxPart) - avg) / avg
	}
}
