package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/costmodel"
	"repro/internal/firrtl"
)

func mustGraph(t testing.TB, src string) *cgraph.Graph {
	t.Helper()
	c, err := firrtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := firrtl.Check(c); err != nil {
		t.Fatalf("check: %v", err)
	}
	fc, err := firrtl.Flatten(c)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	lc, err := firrtl.Lower(fc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	g, err := cgraph.Build(lc)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// randomPipelineSrc generates a register-dense synthetic circuit with both
// shared and private logic, exercising replication.
func randomPipelineSrc(regs int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("circuit R {\n  module R {\n")
	sb.WriteString("    input i : UInt<16>\n")
	for r := 0; r < regs; r++ {
		fmt.Fprintf(&sb, "    reg r%d : UInt<16> init %d\n", r, r)
	}
	// Shared node mixing a few registers.
	sb.WriteString("    node shared = xor(r0, r1)\n")
	for r := 0; r < regs; r++ {
		a := rng.Intn(regs)
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, "    node n%d = tail(add(r%d, shared), 1)\n", r, a)
		case 1:
			fmt.Fprintf(&sb, "    node n%d = xor(r%d, i)\n", r, a)
		case 2:
			fmt.Fprintf(&sb, "    node n%d = and(r%d, shared)\n", r, a)
		}
		fmt.Fprintf(&sb, "    r%d <= n%d\n", r, r)
	}
	sb.WriteString("    output o : UInt<16>\n    o <= shared\n")
	sb.WriteString("  }\n}\n")
	return sb.String()
}

func TestPartitionInvariantsSmall(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(24, 1))
	for _, k := range []int{1, 2, 3, 4, 6} {
		res, err := Partition(g, Options{K: k, Seed: 42, Model: costmodel.Default()})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := Verify(g, res); err != nil {
			t.Fatalf("k=%d: verify: %v", k, err)
		}
		if res.ReplicationCost < 0 {
			t.Fatalf("k=%d: negative replication cost %f", k, res.ReplicationCost)
		}
		if k == 1 {
			if res.ReplicationCost != 0 || res.ReplicatedVertices != 0 {
				t.Fatalf("k=1 must have zero replication, got %f/%d",
					res.ReplicationCost, res.ReplicatedVertices)
			}
		}
	}
}

// Independent sub-circuits must partition with zero replication.
func TestIndependentBlocksZeroReplication(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("circuit B {\n  module B {\n")
	for b := 0; b < 4; b++ {
		fmt.Fprintf(&sb, "    reg a%d : UInt<32> init %d\n", b, b)
		fmt.Fprintf(&sb, "    node x%d = tail(add(a%d, UInt<32>(7)), 1)\n", b, b)
		fmt.Fprintf(&sb, "    node y%d = xor(x%d, a%d)\n", b, b, b)
		fmt.Fprintf(&sb, "    a%d <= y%d\n", b, b)
		fmt.Fprintf(&sb, "    output o%d : UInt<32>\n    o%d <= y%d\n", b, b, b)
	}
	sb.WriteString("  }\n}\n")
	g := mustGraph(t, sb.String())
	res, err := Partition(g, Options{K: 4, Seed: 3, Epsilon: 0.2, Model: costmodel.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
	if res.ReplicationCost != 0 {
		t.Fatalf("independent blocks should need no replication, got %.2f%%",
			100*res.ReplicationCost)
	}
	// Each partition should own one block's sinks.
	for p := range res.Parts {
		if len(res.Parts[p].Sinks) == 0 {
			t.Fatalf("partition %d owns no sinks", p)
		}
	}
}

// A heavily shared cluster must be replicated into every partition that
// needs it, and the cut cost must match the replication accounting.
func TestSharedLogicReplicated(t *testing.T) {
	src := `
circuit S {
  module S {
    input i : UInt<32>
    reg s : UInt<32> init 1
    node hub = xor(s, i)
    reg p0 : UInt<32> init 0
    reg p1 : UInt<32> init 0
    node w0 = tail(add(hub, p0), 1)
    node w1 = xor(hub, p1)
    p0 <= w0
    p1 <= w1
    s <= xor(w0, w1)
    output o : UInt<32>
    o <= s
  }
}
`
	g := mustGraph(t, src)
	res, err := Partition(g, Options{K: 2, Seed: 1, Epsilon: 0.3, Model: costmodel.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
	// hub feeds sinks p0$next, p1$next, s$next; if those sinks span both
	// partitions, hub must appear in both vertex lists.
	hub, _ := g.VertexByName("hub")
	parts := res.PartOf[hub]
	sinkParts := map[int32]bool{}
	for _, v := range []string{"w0", "w1"} {
		vid, _ := g.VertexByName(v)
		for _, p := range res.PartOf[vid] {
			sinkParts[p] = true
		}
	}
	if len(sinkParts) == 2 && len(parts) != 2 {
		t.Fatalf("hub should be replicated into both partitions, got %v", parts)
	}
}

func TestReplicationCostMatchesWeights(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(40, 7))
	res, err := Partition(g, Options{K: 4, Seed: 11, Model: costmodel.Default()})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, p := range res.Parts {
		sum += p.Weight
	}
	want := float64(sum)/float64(res.TotalWeight) - 1
	if diff := res.ReplicationCost - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("replication cost %.6f != recomputed %.6f", res.ReplicationCost, want)
	}
	// CutCost must equal the extra replicated weight.
	extra := sum - res.TotalWeight
	if res.CutCost != extra {
		t.Fatalf("CutCost %d != extra weight %d", res.CutCost, extra)
	}
}

func TestReplicationGrowsWithK(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(60, 5))
	var prev float64 = -1
	grew := false
	for _, k := range []int{2, 4, 8} {
		res, err := Partition(g, Options{K: k, Seed: 9, Model: costmodel.Default()})
		if err != nil {
			t.Fatal(err)
		}
		if res.ReplicationCost > prev {
			grew = true
		}
		prev = res.ReplicationCost
	}
	if !grew {
		t.Fatalf("replication cost never grew with k")
	}
}

func TestUnweightedDiffersFromWeighted(t *testing.T) {
	// With a div-heavy cluster, the weighted model should balance by cost
	// while UW balances by count; the partitions generally differ.
	var sb strings.Builder
	sb.WriteString("circuit W {\n  module W {\n    input i : UInt<16>\n")
	for r := 0; r < 12; r++ {
		fmt.Fprintf(&sb, "    reg d%d : UInt<16> init 1\n", r)
		if r < 3 {
			fmt.Fprintf(&sb, "    node q%d = div(d%d, i)\n", r, r)
			fmt.Fprintf(&sb, "    d%d <= q%d\n", r, r)
		} else {
			fmt.Fprintf(&sb, "    node q%d = xor(d%d, i)\n", r, r)
			fmt.Fprintf(&sb, "    d%d <= q%d\n", r, r)
		}
	}
	sb.WriteString("    output o : UInt<16>\n    o <= q0\n  }\n}\n")
	g := mustGraph(t, sb.String())
	// The paper's claim is statistical: averaged over instances, the
	// weighted model balances *true* cost better than the flat model.
	m := costmodel.Default()
	imb := func(res *Result) float64 {
		var sum, max int64
		for _, p := range res.Parts {
			var wt int64
			for _, v := range p.Vertices {
				wt += m.VertexCost(&g.Vs[v])
			}
			sum += wt
			if wt > max {
				max = wt
			}
		}
		avg := float64(sum) / float64(len(res.Parts))
		return (float64(max) - avg) / avg
	}
	var wSum, uwSum float64
	for seed := int64(0); seed < 8; seed++ {
		w, err := Partition(g, Options{K: 3, Seed: seed, Model: costmodel.Default()})
		if err != nil {
			t.Fatal(err)
		}
		uw, err := Partition(g, Options{K: 3, Seed: seed, Model: costmodel.Unweighted()})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, w); err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, uw); err != nil {
			t.Fatal(err)
		}
		wSum += imb(w)
		uwSum += imb(uw)
	}
	if uwSum/8 < wSum/8-0.10 {
		t.Fatalf("unweighted (avg %.3f) should not balance true cost clearly better than weighted (avg %.3f)",
			uwSum/8, wSum/8)
	}
}

func TestErrors(t *testing.T) {
	g := mustGraph(t, randomPipelineSrc(4, 1))
	if _, err := Partition(g, Options{K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
}
