package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
)

// Property: for random circuits and random K, the partitioning always
// satisfies the structural invariants (self-containment, unique sink
// ownership, full coverage, topological order) and the cost accounting is
// internally consistent.
func TestQuickPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	f := func(raw uint32) bool {
		regs := 10 + rng.Intn(40)
		g := mustGraph(t, randomPipelineSrc(regs, int64(raw%1000)))
		k := 1 + rng.Intn(10)
		uw := rng.Intn(2) == 0
		model := costmodel.Default()
		if uw {
			model = costmodel.Unweighted()
		}
		res, err := Partition(g, Options{K: k, Seed: int64(raw), Model: model})
		if err != nil {
			t.Logf("partition error: %v", err)
			return false
		}
		if err := Verify(g, res); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		// Cost accounting: Σ part weights = total + cut.
		var sum int64
		for i := range res.Parts {
			sum += res.Parts[i].Weight
		}
		if sum != res.TotalWeight+res.CutCost {
			t.Logf("weight accounting: %d != %d + %d", sum, res.TotalWeight, res.CutCost)
			return false
		}
		if res.ReplicationCost < 0 || (k == 1 && res.ReplicationCost != 0) {
			return false
		}
		// PartOf is consistent with the vertex lists.
		for p := range res.Parts {
			for _, v := range res.Parts[p].Vertices {
				found := false
				for _, q := range res.PartOf[v] {
					if int(q) == p {
						found = true
					}
				}
				if !found {
					t.Logf("PartOf inconsistent for vertex %d", v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
