package core

// Dereplication post-pass tests: the pass must strictly reduce realized
// replication on bundled designs at realistic thread counts, survive the
// partition verifier (closure, sink ownership, balance bookkeeping), and
// stay bit-identical across worker counts — the greedy loop and the
// rebuild are sorted everywhere a map could leak iteration order.

import (
	"reflect"
	"testing"

	"repro/internal/cgraph"
	"repro/internal/costmodel"
	"repro/internal/designs"
)

func mustDesign(t *testing.T, name string) *cgraph.Graph {
	t.Helper()
	cfg, err := designs.ParseName(name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	g, err := designs.Build(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

// TestDerepReducesReplication is the headline acceptance claim: at k >= 8
// the post-pass demotes register groups on bundled designs and the
// realized replication cost strictly drops, with the rebuilt partition
// passing the independent Verify oracle.
func TestDerepReducesReplication(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    int
	}{
		{"RocketChip-1C", 16},
		{"RocketChip-4C", 24},
	} {
		g := mustDesign(t, tc.name)
		base, err := Partition(g, Options{K: tc.k, Seed: 1, Model: costmodel.Default()})
		if err != nil {
			t.Fatalf("%s k=%d base: %v", tc.name, tc.k, err)
		}
		res, err := Partition(g, Options{K: tc.k, Seed: 1, Model: costmodel.Default(), Derep: true, Verify: true})
		if err != nil {
			t.Fatalf("%s k=%d derep: %v", tc.name, tc.k, err)
		}
		if len(res.Dereps) == 0 {
			t.Fatalf("%s k=%d: dereplication found nothing to demote", tc.name, tc.k)
		}
		if res.DerepRegs < len(res.Dereps) {
			t.Fatalf("%s k=%d: %d groups demote only %d registers", tc.name, tc.k, len(res.Dereps), res.DerepRegs)
		}
		if res.ReplicationCost >= base.ReplicationCost {
			t.Fatalf("%s k=%d: replication cost %.4f did not drop below baseline %.4f",
				tc.name, tc.k, res.ReplicationCost, base.ReplicationCost)
		}
		t.Logf("%s k=%d: replication %.4f -> %.4f (%d groups, %d regs)",
			tc.name, tc.k, base.ReplicationCost, res.ReplicationCost, len(res.Dereps), res.DerepRegs)
	}
}

// TestDerepDeterministicAcrossWorkers pins the pass's output across worker
// counts: identical groups, identical rebuilt parts.
func TestDerepDeterministicAcrossWorkers(t *testing.T) {
	g := mustDesign(t, "RocketChip-1C")
	base, err := Partition(g, Options{K: 16, Seed: 1, Model: costmodel.Default(), Derep: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Dereps) == 0 {
		t.Fatal("dereplication found nothing to demote; the test proves nothing")
	}
	for _, workers := range []int{2, 8} {
		got, err := Partition(g, Options{K: 16, Seed: 1, Model: costmodel.Default(), Derep: true, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Dereps, got.Dereps) {
			t.Fatalf("workers=%d: derep groups differ from serial", workers)
		}
		for p := range base.Parts {
			if !reflect.DeepEqual(base.Parts[p].Vertices, got.Parts[p].Vertices) {
				t.Fatalf("workers=%d: part %d vertex list differs", workers, p)
			}
		}
		if got.ReplicationCost != base.ReplicationCost {
			t.Fatalf("workers=%d: replication cost %.6f differs from serial %.6f",
				workers, got.ReplicationCost, base.ReplicationCost)
		}
	}
}
