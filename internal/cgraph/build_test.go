package cgraph

import (
	"strings"
	"testing"

	"repro/internal/firrtl"
)

// mustGraph parses, checks, flattens, lowers, and builds.
func mustGraph(t *testing.T, src string) *Graph {
	t.Helper()
	c, err := firrtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := firrtl.Check(c); err != nil {
		t.Fatalf("check: %v", err)
	}
	fc, err := firrtl.Flatten(c)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	lc, err := firrtl.Lower(fc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	g, err := Build(lc)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestRegisterSplitting(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    input  i : UInt<8>
    output o : UInt<8>
    reg r : UInt<8> init 5
    node nx = tail(add(r, i), 1)
    r <= nx
    o <= r
  }
}
`)
	if len(g.Regs) != 1 {
		t.Fatalf("want 1 reg, got %d", len(g.Regs))
	}
	reg := g.Regs[0]
	if reg.Read == None || reg.Write == None {
		t.Fatalf("register not split: %+v", reg)
	}
	if g.Vs[reg.Read].Kind != KindRegRead || g.Vs[reg.Write].Kind != KindRegWrite {
		t.Fatalf("wrong kinds for split register")
	}
	if reg.Init.Uint64() != 5 {
		t.Fatalf("init = %d, want 5", reg.Init.Uint64())
	}
	// The read vertex must have no predecessors, the write no successors.
	if len(g.Preds[reg.Read]) != 0 {
		t.Errorf("RegRead has predecessors")
	}
	if len(g.Succs[reg.Write]) != 0 {
		t.Errorf("RegWrite has successors")
	}
	// No path read -> ... -> read within a cycle: write's cone contains read.
	st := g.Stats()
	if st.RegWrites != 1 || st.SinkVtx != 2 { // regwrite + output
		t.Errorf("stats = %+v", st)
	}
}

func TestUndrivenRegisterHolds(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    output o : UInt<4>
    reg r : UInt<4> init 9
    o <= r
  }
}
`)
	reg := g.Regs[0]
	w := g.Vs[reg.Write]
	if len(w.Args) != 1 || w.Args[0].V != reg.Read {
		t.Fatalf("undriven register should feed back its own read vertex")
	}
}

func TestMemorySplitting(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    input  a : UInt<4>
    input  d : UInt<8>
    output o : UInt<8>
    mem m : UInt<8>[16]
    node rd = read(m, a)
    write(m, a, d, UInt<1>(1))
    o <= rd
  }
}
`)
	if len(g.Mems) != 1 {
		t.Fatalf("want 1 mem")
	}
	mi := g.Mems[0]
	if g.Vs[mi.Source].Kind != KindMemSource {
		t.Fatalf("mem source missing")
	}
	if len(mi.Reads) != 1 || len(mi.Writes) != 1 {
		t.Fatalf("reads/writes = %d/%d", len(mi.Reads), len(mi.Writes))
	}
	// Read depends on the memory source and on the address input.
	preds := g.Preds[mi.Reads[0]]
	foundSrc, foundAddr := false, false
	for _, p := range preds {
		if p == mi.Source {
			foundSrc = true
		}
		if g.Vs[p].Kind == KindInput && g.Vs[p].Name == "a" {
			foundAddr = true
		}
	}
	if !foundSrc || !foundAddr {
		t.Fatalf("memread preds wrong: src=%v addr=%v", foundSrc, foundAddr)
	}
	// Write is a sink with 3 operands.
	wv := g.Vs[mi.Writes[0]]
	if !wv.Kind.IsSink() || len(wv.Args) != 3 {
		t.Fatalf("memwrite vertex malformed: %+v", wv)
	}
}

func TestAliasElimination(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    input  i : UInt<8>
    output o : UInt<8>
    wire w : UInt<8>
    node a = w
    node b = not(a)
    w <= i
    o <= b
  }
}
`)
	// w and a are aliases: only input, not-gate, output sink remain.
	var logic int
	for _, v := range g.Vs {
		if v.Kind == KindLogic {
			logic++
		}
	}
	if logic != 1 {
		t.Fatalf("want 1 logic vertex after alias elimination, got %d", logic)
	}
	// The not-gate's operand must resolve to the input vertex.
	nb, ok := g.VertexByName("b")
	if !ok {
		t.Fatalf("node b missing")
	}
	in, _ := g.VertexByName("i")
	if g.Vs[nb].Args[0].V != in {
		t.Fatalf("alias not resolved to input")
	}
}

func TestDeadCodePruned(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    input  i : UInt<8>
    output o : UInt<8>
    node dead1 = not(i)
    node dead2 = xor(dead1, i)
    o <= i
  }
}
`)
	if g.DeadRemoved != 2 {
		t.Fatalf("DeadRemoved = %d, want 2", g.DeadRemoved)
	}
	for _, v := range g.Vs {
		if v.Kind == KindLogic {
			t.Fatalf("dead logic survived: %s", v.Name)
		}
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	src := `
circuit C {
  module C {
    input  i : UInt<1>
    output o : UInt<1>
    wire a : UInt<1>
    wire b : UInt<1>
    node x = and(a, i)
    node y = or(b, i)
    a <= y
    b <= x
    o <= x
  }
}
`
	c, err := firrtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := firrtl.Check(c); err != nil {
		t.Fatalf("check: %v", err)
	}
	fc, err := firrtl.Flatten(c)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	lc, err := firrtl.Lower(fc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := Build(lc); err == nil {
		t.Fatalf("expected combinational cycle error")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error %q should mention cycle", err)
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    input  i : UInt<8>
    output o : UInt<8>
    reg r1 : UInt<8> init 0
    reg r2 : UInt<8> init 0
    node s = tail(add(r1, r2), 1)
    node p = xor(s, i)
    r1 <= p
    r2 <= s
    o <= p
  }
}
`)
	if len(g.Topo) != len(g.Vs) {
		t.Fatalf("topo incomplete: %d/%d", len(g.Topo), len(g.Vs))
	}
	pos := make([]int, len(g.Vs))
	for i, v := range g.Topo {
		pos[v] = i
	}
	for v := range g.Vs {
		for _, s := range g.Succs[v] {
			if pos[v] >= pos[s] {
				t.Fatalf("topo violates edge %s -> %s", g.Vs[v].Name, g.Vs[s].Name)
			}
		}
	}
}

func TestSinksAndSources(t *testing.T) {
	g := mustGraph(t, `
circuit C {
  module C {
    input  i : UInt<8>
    output o : UInt<8>
    reg r : UInt<8> init 0
    mem m : UInt<8>[4]
    node rd = read(m, bits(i, 1, 0))
    write(m, bits(i, 1, 0), r, UInt<1>(1))
    r <= rd
    o <= r
  }
}
`)
	sinks := g.Sinks()
	sources := g.Sources()
	// Sinks: regwrite, memwrite, output = 3. Sources: input, regread,
	// memsource = 3.
	if len(sinks) != 3 || len(sources) != 3 {
		t.Fatalf("sinks=%d sources=%d, want 3/3", len(sinks), len(sources))
	}
	for _, s := range sinks {
		if len(g.Succs[s]) != 0 {
			t.Errorf("sink %s has successors", g.Vs[s].Name)
		}
	}
	for _, s := range sources {
		if len(g.Preds[s]) != 0 {
			t.Errorf("source %s has predecessors", g.Vs[s].Name)
		}
	}
}

func TestOutputReadAsValue(t *testing.T) {
	// Reading an output port from inside the module.
	g := mustGraph(t, `
circuit C {
  module C {
    input  i : UInt<8>
    output a : UInt<8>
    output b : UInt<8>
    a <= not(i)
    b <= a
  }
}
`)
	if len(g.Outputs) != 2 {
		t.Fatalf("want 2 outputs")
	}
	// b's driver should resolve to the same not-gate driving a.
	var aDrv, bDrv VID
	for _, o := range g.Outputs {
		switch g.Vs[o].Name {
		case "a":
			aDrv = g.Vs[o].Args[0].V
		case "b":
			bDrv = g.Vs[o].Args[0].V
		}
	}
	if aDrv != bDrv {
		t.Fatalf("output alias not resolved: a<-%d b<-%d", aDrv, bDrv)
	}
}
