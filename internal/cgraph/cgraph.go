// Package cgraph builds the circuit DAG the RepCut partitioner operates on.
//
// Following §4.1 of the paper, every register is split into two vertices —
// a read (source) and a write (sink) — and every memory into a state source,
// combinational read vertices, and write sinks. Sources carry state across
// cycles and are not partitioned; sinks anchor the cones that the
// replication-aided partitioner assigns to threads. All other vertices are
// combinational and map one-to-one onto lowered IR statements.
package cgraph

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/firrtl"
)

// VID identifies a vertex in a Graph.
type VID int32

// None marks the absence of a vertex (e.g. a literal operand).
const None VID = -1

// Kind classifies graph vertices.
type Kind uint8

// Vertex kinds. Sources have no predecessors; sinks have no successors.
const (
	KindInput     Kind = iota // source: top-level input port
	KindRegRead               // source: register value at cycle start
	KindMemSource             // source: memory state at cycle start
	KindConst                 // combinational: literal constant
	KindLogic                 // combinational: primitive operation
	KindMemRead               // combinational: memory read port
	KindRegWrite              // sink: register next-value
	KindMemWrite              // sink: memory write port
	KindOutput                // sink: top-level output port
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindRegRead:
		return "regread"
	case KindMemSource:
		return "memsource"
	case KindConst:
		return "const"
	case KindLogic:
		return "logic"
	case KindMemRead:
		return "memread"
	case KindRegWrite:
		return "regwrite"
	case KindMemWrite:
		return "memwrite"
	case KindOutput:
		return "output"
	}
	return "?kind"
}

// IsSource reports whether k is a state/input source vertex.
func (k Kind) IsSource() bool {
	return k == KindInput || k == KindRegRead || k == KindMemSource
}

// IsSink reports whether k is a state/output sink vertex.
func (k Kind) IsSink() bool {
	return k == KindRegWrite || k == KindMemWrite || k == KindOutput
}

// Operand is a vertex argument: either another vertex or a literal.
type Operand struct {
	V   VID         // None for a literal
	Lit *firrtl.Lit // nil unless V == None
}

// Vertex is one node of the circuit DAG.
type Vertex struct {
	Kind   Kind
	Name   string
	Type   firrtl.Type
	Op     firrtl.PrimOp // valid for KindLogic
	Consts []int         // valid for KindLogic
	// Args are the data operands:
	//   Logic:    primitive arguments in order
	//   MemRead:  [address]
	//   MemWrite: [address, data, enable]
	//   RegWrite, Output: [driver]
	Args     []Operand
	ArgTypes []firrtl.Type
	Reg      int // register index for KindRegRead/KindRegWrite, else -1
	Mem      int // memory index for KindMem*, else -1
}

// RegInfo describes one split register.
type RegInfo struct {
	Name  string
	Type  firrtl.Type
	Init  bitvec.Vec
	Read  VID
	Write VID
}

// DerepGroup describes one dereplicated register group produced by the
// partitioner's dereplication post-pass. The registers (indices into
// Graph.Regs, ascending) all take their next value from the same driver
// vertex U and share one initial value, so their write sinks are demoted:
// no thread executes them, and instead the owning partition commits U's
// value once per cycle into a single shared slot that every register's
// read vertex aliases. At the evaluation phase of cycle c the slot holds
// U@(c−1), which by the register transfer r@c = U@(c−1) is exactly the
// registers' current value — readers on other threads see only the
// previous cycle's committed value, never a same-cycle one.
type DerepGroup struct {
	// U is the common next-value driver vertex committed by the owner.
	U VID
	// Owner is the partition that computes U and commits the shared slot.
	Owner int32
	// Regs are the demoted registers (indices into Graph.Regs, ascending).
	Regs []int32
}

// MemInfo describes one memory.
type MemInfo struct {
	Name   string
	Type   firrtl.Type
	Depth  int
	Source VID
	Reads  []VID
	Writes []VID
}

// Graph is the split circuit DAG.
type Graph struct {
	Name string
	Vs   []Vertex
	// Succs and Preds are the adjacency lists (data edges only; a literal
	// operand contributes no edge).
	Succs [][]VID
	Preds [][]VID

	Regs []RegInfo
	Mems []MemInfo

	Inputs  []VID
	Outputs []VID

	// Topo is a topological order over all vertices (sources first).
	Topo []VID

	// DeadRemoved counts combinational vertices pruned because they reach
	// no sink.
	DeadRemoved int

	byName map[string]VID
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Vs) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.Succs {
		n += len(s)
	}
	return n
}

// VertexByName returns the vertex with the given IR name.
func (g *Graph) VertexByName(name string) (VID, bool) {
	v, ok := g.byName[name]
	return v, ok
}

// Sinks returns all sink vertex IDs.
func (g *Graph) Sinks() []VID {
	var out []VID
	for i := range g.Vs {
		if g.Vs[i].Kind.IsSink() {
			out = append(out, VID(i))
		}
	}
	return out
}

// Sources returns all source vertex IDs.
func (g *Graph) Sources() []VID {
	var out []VID
	for i := range g.Vs {
		if g.Vs[i].Kind.IsSource() {
			out = append(out, VID(i))
		}
	}
	return out
}

// Stats are the Table 1 columns for a design.
type Stats struct {
	IRNodes   int
	Edges     int
	SinkVtx   int
	SinkPct   float64
	RegWrites int
	MemWrites int
}

// Stats computes the design statistics reported in Table 1.
func (g *Graph) Stats() Stats {
	s := Stats{IRNodes: g.NumVertices(), Edges: g.NumEdges()}
	for i := range g.Vs {
		if g.Vs[i].Kind.IsSink() {
			s.SinkVtx++
		}
		switch g.Vs[i].Kind {
		case KindRegWrite:
			s.RegWrites++
		case KindMemWrite:
			s.MemWrites++
		}
	}
	if s.IRNodes > 0 {
		s.SinkPct = 100 * float64(s.SinkVtx) / float64(s.IRNodes)
	}
	return s
}

// String summarizes the graph.
func (g *Graph) String() string {
	st := g.Stats()
	return fmt.Sprintf("graph %s: %d vertices, %d edges, %d sinks (%.2f%%), %d regs, %d mems",
		g.Name, st.IRNodes, st.Edges, st.SinkVtx, st.SinkPct, len(g.Regs), len(g.Mems))
}
