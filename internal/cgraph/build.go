package cgraph

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/firrtl"
)

// Build constructs the split circuit DAG from a checked, flat, lowered
// circuit (see firrtl.Flatten and firrtl.Lower). Wires and alias nodes are
// resolved away; combinational vertices unreachable from any sink are
// pruned. Build fails on combinational cycles.
func Build(c *firrtl.Circuit) (*Graph, error) {
	if len(c.Modules) != 1 {
		return nil, fmt.Errorf("cgraph: circuit must be flat")
	}
	m := c.Modules[0]
	b := &builder{
		g:       &Graph{Name: c.Name, byName: map[string]VID{}},
		aliases: map[string]string{},
		drivers: map[string]firrtl.Expr{},
	}
	return b.build(m)
}

type builder struct {
	g *Graph
	// aliases maps a name to the name it is a pure alias of (wire driven by
	// a ref, or node bound to a ref).
	aliases map[string]string
	// drivers maps wire/reg/output names to the atom expression driving
	// them.
	drivers map[string]firrtl.Expr
}

func (b *builder) addVertex(v Vertex) VID {
	id := VID(len(b.g.Vs))
	b.g.Vs = append(b.g.Vs, v)
	if v.Name != "" {
		b.g.byName[v.Name] = id
	}
	return id
}

// resolve follows alias chains to a canonical name. Alias cycles (wires
// driving each other) terminate after len(aliases) steps and surface later
// as unresolved references.
func (b *builder) resolve(name string) string {
	for i := 0; i <= len(b.aliases); i++ {
		next, ok := b.aliases[name]
		if !ok {
			return name
		}
		name = next
	}
	return name
}

func (b *builder) build(m *firrtl.Module) (*Graph, error) {
	g := b.g

	// Pass 1: create source vertices (inputs, register reads, memory
	// sources) and record wire/output drivers and aliases.
	for _, p := range m.Ports {
		if p.Type.IsClock() {
			continue
		}
		if p.Dir == firrtl.Input {
			id := b.addVertex(Vertex{Kind: KindInput, Name: p.Name, Type: p.Type, Reg: -1, Mem: -1})
			g.Inputs = append(g.Inputs, id)
		}
	}
	for _, st := range m.Stmts {
		switch s := st.(type) {
		case *firrtl.Reg:
			ri := len(g.Regs)
			init := bitvec.New(s.Type.Width)
			if s.Init != nil {
				init = *s.Init
			}
			id := b.addVertex(Vertex{Kind: KindRegRead, Name: s.Name, Type: s.Type, Reg: ri, Mem: -1})
			g.Regs = append(g.Regs, RegInfo{Name: s.Name, Type: s.Type, Init: init, Read: id, Write: None})
		case *firrtl.Mem:
			mi := len(g.Mems)
			id := b.addVertex(Vertex{
				Kind: KindMemSource, Name: s.Name, Type: s.Type, Reg: -1, Mem: mi,
			})
			g.Mems = append(g.Mems, MemInfo{Name: s.Name, Type: s.Type, Depth: s.Depth, Source: id})
		}
	}

	// Pass 2: record aliases and drivers. Alias chains must be recorded
	// before logic vertices resolve their operands, and connects may appear
	// anywhere relative to their uses (wires), so gather first.
	for _, st := range m.Stmts {
		switch s := st.(type) {
		case *firrtl.Node:
			if r, ok := s.Expr.(*firrtl.Ref); ok {
				b.aliases[s.Name] = r.Name
			}
		case *firrtl.Connect:
			b.drivers[s.Loc] = s.Expr
		}
	}
	// Wires driven by plain refs are aliases too, and so are output ports
	// when read from inside the module.
	for _, st := range m.Stmts {
		if w, ok := st.(*firrtl.Wire); ok {
			d, ok := b.drivers[w.Name]
			if !ok {
				return nil, fmt.Errorf("cgraph: wire %s has no driver", w.Name)
			}
			if r, ok := d.(*firrtl.Ref); ok {
				b.aliases[w.Name] = r.Name
			}
		}
	}
	for _, p := range m.Ports {
		if p.Dir == firrtl.Output && !p.Type.IsClock() {
			if r, ok := b.drivers[p.Name].(*firrtl.Ref); ok {
				b.aliases[p.Name] = r.Name
			}
		}
	}

	// atomOperand converts a lowered atom (Ref or Lit) into an Operand.
	// Refs through wires/alias nodes resolve to their canonical vertex.
	var atomOperand func(e firrtl.Expr) (Operand, error)
	atomOperand = func(e firrtl.Expr) (Operand, error) {
		switch x := e.(type) {
		case *firrtl.Lit:
			return Operand{V: None, Lit: x}, nil
		case *firrtl.Ref:
			name := b.resolve(x.Name)
			if id, ok := g.byName[name]; ok {
				return Operand{V: id}, nil
			}
			// A wire driven by a literal resolves to that literal.
			if d, ok := b.drivers[name]; ok {
				if lit, isLit := d.(*firrtl.Lit); isLit {
					return Operand{V: None, Lit: lit}, nil
				}
			}
			return Operand{}, fmt.Errorf("cgraph: unresolved reference %q", x.Name)
		}
		return Operand{}, fmt.Errorf("cgraph: operand is not an atom: %T (run firrtl.Lower)", e)
	}

	// Pass 3: create combinational vertices in statement order. Lowered IR
	// is def-before-use for nodes, so operands resolve as we go — except
	// wires, which may forward-reference; handle them with a fixup list.
	type fixup struct {
		v   VID
		idx int
		ref string
	}
	var fixups []fixup
	operandOrFixup := func(v VID, idx int, e firrtl.Expr) (Operand, error) {
		op, err := atomOperand(e)
		if err == nil {
			return op, nil
		}
		if r, ok := e.(*firrtl.Ref); ok {
			fixups = append(fixups, fixup{v: v, idx: idx, ref: r.Name})
			return Operand{V: None}, nil
		}
		return Operand{}, err
	}

	for _, st := range m.Stmts {
		n, ok := st.(*firrtl.Node)
		if !ok {
			continue
		}
		if _, isAlias := b.aliases[n.Name]; isAlias {
			continue
		}
		switch e := n.Expr.(type) {
		case *firrtl.Lit:
			b.addVertex(Vertex{Kind: KindConst, Name: n.Name, Type: e.Typ, Reg: -1, Mem: -1,
				Args: []Operand{{V: None, Lit: e}}})
		case *firrtl.MemRead:
			memV, err := atomOperand(&firrtl.Ref{Name: e.Mem})
			if err != nil {
				return nil, fmt.Errorf("cgraph: node %s: %w", n.Name, err)
			}
			mi := g.Vs[memV.V].Mem
			id := VID(len(g.Vs))
			addrOp, err := operandOrFixup(id, 0, e.Addr)
			if err != nil {
				return nil, fmt.Errorf("cgraph: node %s: %w", n.Name, err)
			}
			b.addVertex(Vertex{
				Kind: KindMemRead, Name: n.Name, Type: e.Typ, Reg: -1, Mem: mi,
				Args:     []Operand{addrOp},
				ArgTypes: []firrtl.Type{e.Addr.Type()},
			})
			g.Mems[mi].Reads = append(g.Mems[mi].Reads, id)
		case *firrtl.Prim:
			id := VID(len(g.Vs))
			args := make([]Operand, len(e.Args))
			ats := make([]firrtl.Type, len(e.Args))
			for i, a := range e.Args {
				op, err := operandOrFixup(id, i, a)
				if err != nil {
					return nil, fmt.Errorf("cgraph: node %s: %w", n.Name, err)
				}
				args[i] = op
				ats[i] = a.Type()
			}
			b.addVertex(Vertex{
				Kind: KindLogic, Name: n.Name, Type: e.Typ, Reg: -1, Mem: -1,
				Op: e.Op, Consts: e.Consts, Args: args, ArgTypes: ats,
			})
		default:
			return nil, fmt.Errorf("cgraph: node %s: unexpected expr %T", n.Name, n.Expr)
		}
	}

	// Resolve wire forward references now that all vertices exist.
	for _, f := range fixups {
		op, err := atomOperand(&firrtl.Ref{Name: f.ref})
		if err != nil {
			return nil, err
		}
		g.Vs[f.v].Args[f.idx] = op
	}

	// Pass 4: sinks. Register writes, memory writes, outputs.
	for ri := range g.Regs {
		reg := &g.Regs[ri]
		var drv Operand
		if d, ok := b.drivers[reg.Name]; ok {
			op, err := atomOperand(d)
			if err != nil {
				return nil, fmt.Errorf("cgraph: reg %s driver: %w", reg.Name, err)
			}
			drv = op
		} else {
			// Undriven register holds its value: next = current.
			drv = Operand{V: reg.Read}
		}
		id := b.addVertexNoName(Vertex{
			Kind: KindRegWrite, Name: reg.Name + "$next", Type: reg.Type,
			Reg: ri, Mem: -1, Args: []Operand{drv},
			ArgTypes: []firrtl.Type{reg.Type},
		})
		reg.Write = id
	}
	for _, st := range m.Stmts {
		w, ok := st.(*firrtl.MemWrite)
		if !ok {
			continue
		}
		memV, err := atomOperand(&firrtl.Ref{Name: w.Mem})
		if err != nil {
			return nil, err
		}
		mi := g.Vs[memV.V].Mem
		addr, err := atomOperand(w.Addr)
		if err != nil {
			return nil, err
		}
		data, err := atomOperand(w.Data)
		if err != nil {
			return nil, err
		}
		en, err := atomOperand(w.En)
		if err != nil {
			return nil, err
		}
		id := b.addVertexNoName(Vertex{
			Kind: KindMemWrite, Name: fmt.Sprintf("%s$w%d", w.Mem, len(g.Mems[mi].Writes)),
			Type: g.Mems[mi].Type, Reg: -1, Mem: mi,
			Args:     []Operand{addr, data, en},
			ArgTypes: []firrtl.Type{w.Addr.Type(), w.Data.Type(), w.En.Type()},
		})
		g.Mems[mi].Writes = append(g.Mems[mi].Writes, id)
	}
	for _, p := range m.Ports {
		if p.Dir != firrtl.Output || p.Type.IsClock() {
			continue
		}
		d, ok := b.drivers[p.Name]
		if !ok {
			return nil, fmt.Errorf("cgraph: output %s has no driver", p.Name)
		}
		op, err := atomOperand(d)
		if err != nil {
			return nil, fmt.Errorf("cgraph: output %s: %w", p.Name, err)
		}
		id := b.addVertexNoName(Vertex{
			Kind: KindOutput, Name: p.Name, Type: p.Type, Reg: -1, Mem: -1,
			Args:     []Operand{op},
			ArgTypes: []firrtl.Type{p.Type},
		})
		g.Outputs = append(g.Outputs, id)
	}

	if err := b.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// addVertexNoName adds a vertex without registering its name for reference
// resolution (sink names share the register/output name).
func (b *builder) addVertexNoName(v Vertex) VID {
	id := VID(len(b.g.Vs))
	b.g.Vs = append(b.g.Vs, v)
	return id
}

// finish builds adjacency, prunes dead combinational logic, and computes a
// topological order (error on combinational cycles).
func (b *builder) finish() error {
	g := b.g
	buildAdjacency(g)

	// Prune combinational vertices that reach no sink.
	if n := pruneDead(g); n > 0 {
		g.DeadRemoved = n
		buildAdjacency(g)
	}

	return computeTopo(g)
}

func buildAdjacency(g *Graph) {
	n := len(g.Vs)
	g.Preds = make([][]VID, n)
	g.Succs = make([][]VID, n)
	addEdge := func(from, to VID) {
		g.Succs[from] = append(g.Succs[from], to)
		g.Preds[to] = append(g.Preds[to], from)
	}
	for i := range g.Vs {
		v := &g.Vs[i]
		for _, a := range v.Args {
			if a.V != None && v.Kind != KindConst {
				addEdge(a.V, VID(i))
			}
		}
		// Memory reads additionally depend on the memory's state source.
		if v.Kind == KindMemRead {
			addEdge(g.Mems[v.Mem].Source, VID(i))
		}
	}
}

// pruneDead removes combinational vertices (logic, const, memread) from
// which no sink is reachable, remapping all IDs. Returns the removed count.
func pruneDead(g *Graph) int {
	n := len(g.Vs)
	live := make([]bool, n)
	stack := make([]VID, 0, n)
	for i := range g.Vs {
		if g.Vs[i].Kind.IsSink() {
			live[i] = true
			stack = append(stack, VID(i))
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds[v] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	// Sources always stay (they are state; the simulator must still hold
	// them), as do sinks.
	removed := 0
	for i := range g.Vs {
		if !live[i] && !g.Vs[i].Kind.IsSource() {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	remap := make([]VID, n)
	var vs []Vertex
	for i := range g.Vs {
		if live[i] || g.Vs[i].Kind.IsSource() {
			remap[i] = VID(len(vs))
			vs = append(vs, g.Vs[i])
		} else {
			remap[i] = None
		}
	}
	mapID := func(v VID) VID {
		if v == None {
			return None
		}
		return remap[v]
	}
	for i := range vs {
		for j := range vs[i].Args {
			vs[i].Args[j].V = mapID(vs[i].Args[j].V)
		}
	}
	g.Vs = vs
	for i := range g.Regs {
		g.Regs[i].Read = mapID(g.Regs[i].Read)
		g.Regs[i].Write = mapID(g.Regs[i].Write)
	}
	for i := range g.Mems {
		g.Mems[i].Source = mapID(g.Mems[i].Source)
		g.Mems[i].Reads = mapIDs(g.Mems[i].Reads, remap)
		g.Mems[i].Writes = mapIDs(g.Mems[i].Writes, remap)
	}
	g.Inputs = mapIDs(g.Inputs, remap)
	g.Outputs = mapIDs(g.Outputs, remap)
	for name, id := range g.byName {
		if nid := mapID(id); nid == None {
			delete(g.byName, name)
		} else {
			g.byName[name] = nid
		}
	}
	return removed
}

func mapIDs(ids []VID, remap []VID) []VID {
	out := ids[:0]
	for _, id := range ids {
		if nid := remap[id]; nid != None {
			out = append(out, nid)
		}
	}
	return out
}

// computeTopo fills g.Topo with a topological order (Kahn's algorithm) and
// reports combinational cycles.
func computeTopo(g *Graph) error {
	n := len(g.Vs)
	indeg := make([]int, n)
	for i := range g.Vs {
		indeg[i] = len(g.Preds[i])
	}
	queue := make([]VID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, VID(i))
		}
	}
	topo := make([]VID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, s := range g.Succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != n {
		var stuck []string
		for i := 0; i < n && len(stuck) < 5; i++ {
			if indeg[i] > 0 {
				stuck = append(stuck, g.Vs[i].Name)
			}
		}
		return fmt.Errorf("cgraph: combinational cycle involving %v", stuck)
	}
	g.Topo = topo
	return nil
}
