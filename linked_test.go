package repcut

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/designs"
	"repro/internal/sim"
	"repro/internal/verify"
)

// TestLinkedCrossCheckDesigns is the ISSUE-level acceptance test for the
// linked fast path: on bundled designs, for every compile worker count in
// {0, 1, 2, 8}, the linked engine must match the reference interpreter
// bit-for-bit on every register over a randomized input run, the
// fingerprint must be identical across worker counts (linking changes
// nothing observable), and the static verifier must prove the fused
// programs sound.
func TestLinkedCrossCheckDesigns(t *testing.T) {
	cases := []struct {
		cfg     designs.Config
		threads int
	}{
		{designs.Config{Kind: designs.Rocket, Cores: 1, Scale: 0.25}, 1},
		{designs.Config{Kind: designs.SmallBoom, Cores: 1, Scale: 0.25}, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s-k%d", c.cfg.Name(), c.threads), func(t *testing.T) {
			g, err := designs.Build(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			d := &Design{Graph: g}
			var baseFP uint64
			for i, workers := range []int{0, 1, 2, 8} {
				comp, err := d.CompileProgram(Options{Threads: c.threads, Workers: workers, Verify: true})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				fp := comp.Program.Fingerprint()
				if i == 0 {
					baseFP = fp
				} else if fp != baseFP {
					t.Fatalf("workers=%d: fingerprint %#x differs from workers=0 %#x", workers, fp, baseFP)
				}
				if comp.Verification == nil || comp.Verification.Err() != nil {
					t.Fatalf("workers=%d: verify failed: %v", workers, comp.Verification.Err())
				}
				if comp.Program.Linked().Stats.Fused == 0 {
					t.Fatalf("workers=%d: no fusion on %s", workers, c.cfg.Name())
				}

				linked := sim.NewEngine(comp.Program)
				interp := sim.NewInterpEngine(comp.Program)
				rng := rand.New(rand.NewSource(99))
				for cyc := 0; cyc < 50; cyc++ {
					for _, in := range comp.Program.Inputs {
						if in.Wide {
							continue
						}
						v := rng.Uint64()
						if err := linked.PokeInput(in.Name, v); err != nil {
							t.Fatal(err)
						}
						if err := interp.PokeInput(in.Name, v); err != nil {
							t.Fatal(err)
						}
					}
					linked.Run(1)
					interp.Run(1)
				}
				for _, r := range comp.Program.Regs {
					lv, err := linked.PeekReg(r.Name)
					if err != nil {
						t.Fatal(err)
					}
					iv, err := interp.PeekReg(r.Name)
					if err != nil {
						t.Fatal(err)
					}
					if !bitvec.Eq(lv, iv) {
						t.Fatalf("workers=%d: reg %s diverges: linked %v, interp %v", workers, r.Name, lv, iv)
					}
				}
				for _, o := range comp.Program.Outputs {
					if o.Wide {
						continue
					}
					lv, _ := linked.PeekOutput(o.Name)
					iv, _ := interp.PeekOutput(o.Name)
					if lv != iv {
						t.Fatalf("workers=%d: output %s diverges: linked %d, interp %d", workers, o.Name, lv, iv)
					}
				}
			}
		})
	}
}

// The verifier's Linked option must re-scan the fused streams: a clean
// program passes, and its report covers more locations than the base scan.
func TestVerifyLinkedOption(t *testing.T) {
	c, err := ParseCircuit(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := d.CompileProgram(Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := verify.Program(comp.Program, verify.Options{})
	withLinked := verify.Program(comp.Program, verify.Options{Linked: true})
	if err := withLinked.Err(); err != nil {
		t.Fatal(err)
	}
	if withLinked.Instrs <= base.Instrs || withLinked.Locs <= base.Locs {
		t.Fatalf("linked scan added no coverage: instrs %d vs %d, locs %d vs %d",
			withLinked.Instrs, base.Instrs, withLinked.Locs, base.Locs)
	}
}
