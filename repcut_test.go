package repcut

import (
	"os"
	"path/filepath"
	"testing"
)

const counterSrc = `
circuit Counter {
  module Counter {
    input  en  : UInt<1>
    output out : UInt<16>
    reg r : UInt<16> init 0
    node nx = tail(add(r, UInt<16>(3)), 1)
    r <= mux(en, nx, r)
    out <= r
  }
}
`

func TestPublicAPIFlow(t *testing.T) {
	c, err := ParseCircuit(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.RegWrites != 1 {
		t.Fatalf("stats: %+v", st)
	}
	s, err := d.CompileSerial(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PokeInput("en", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	rv, err := s.PeekReg("r")
	if err != nil {
		t.Fatal(err)
	}
	if rv.Uint64() != 30 {
		t.Fatalf("counter = %d, want 30", rv.Uint64())
	}
}

func TestParallelFacadeMatchesSerial(t *testing.T) {
	c, err := ParseCircuit(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := d.CompileSerial(2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.CompileParallel(Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if par.Report == nil || par.Report.Threads != 2 {
		t.Fatalf("missing partition report")
	}
	for _, e := range []*Simulator{ser, par} {
		if err := e.PokeInput("en", 1); err != nil {
			t.Fatal(err)
		}
		e.Run(25)
	}
	a, _ := ser.PeekReg("r")
	b, _ := par.PeekReg("r")
	if a.Uint64() != b.Uint64() {
		t.Fatalf("parallel facade diverges: %d vs %d", a.Uint64(), b.Uint64())
	}
}

func TestLoadCircuit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.fir")
	if err := os.WriteFile(path, []byte(counterSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCircuit(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCircuit(filepath.Join(dir, "missing.fir")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestOptionsValidation(t *testing.T) {
	c, _ := ParseCircuit(counterSrc)
	d, _ := Elaborate(c)
	if _, err := d.CompileParallel(Options{Threads: 0}); err == nil {
		t.Fatal("Threads=0 must error")
	}
	if _, err := ParseCircuit("circuit X {"); err == nil {
		t.Fatal("bad source must error")
	}
}

func TestCompileParallelVerify(t *testing.T) {
	c, err := ParseCircuit(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2} {
		s, err := d.CompileParallel(Options{Threads: threads, Verify: true})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if s.Verification == nil {
			t.Fatalf("threads=%d: no verification report attached", threads)
		}
		if err := s.Verification.Err(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
	// Without the flag the report must stay nil (no analysis cost paid).
	s, err := d.CompileParallel(Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Verification != nil {
		t.Fatal("verification ran without Options.Verify")
	}
}
