package repcut

// Benchmark harness: one target per table and figure of the paper's
// evaluation. Each Benchmark* regenerates its experiment's rows (printed
// with -v via b.Log) and reports the headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` both exercises the code
// under the Go benchmark framework and reproduces the paper's series.
// cmd/benchall renders the same data as full tables/CSV.
//
// The quick suite (one design per family) is shared across benchmarks and
// memoizes design builds, partitions, and compiled programs, so individual
// targets stay fast after the first.

import (
	"sync"
	"testing"

	"repro/internal/designs"
	"repro/internal/experiments"
	"repro/internal/hostmodel"
	"repro/internal/sim"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewQuick() })
	return suite
}

// BenchmarkTable1Stats regenerates Table 1 (design statistics).
func BenchmarkTable1Stats(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tbl := s.Table1()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
	mega := s.Graph(designs.Config{Kind: designs.MegaBoom, Cores: 4, Scale: 1}).Stats()
	b.ReportMetric(float64(mega.IRNodes), "meganodes")
	b.ReportMetric(mega.SinkPct, "megasink%")
}

// BenchmarkFig2Profiles regenerates Figure 2 (thread activity profiles).
func BenchmarkFig2Profiles(b *testing.B) {
	s := benchSuite()
	var util float64
	for i := 0; i < b.N; i++ {
		rows, tbl := s.Fig2Profiles()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		for _, r := range rows {
			if r.Design == "MegaBOOM-4C" && r.Simulator == experiments.SimRepCut {
				util = r.Utilization
			}
		}
	}
	b.ReportMetric(100*util, "repcut_util%")
}

// BenchmarkFig6Replication regenerates Figure 6 (replication cost).
func BenchmarkFig6Replication(b *testing.B) {
	s := benchSuite()
	var mega24 float64
	for i := 0; i < b.N; i++ {
		pts, tbl := s.Fig6Replication()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		for _, p := range pts {
			if p.Design == "MegaBOOM-4C" && p.K == 24 {
				mega24 = p.Replication
			}
		}
	}
	b.ReportMetric(100*mega24, "mega4c_rep%@24")
}

// BenchmarkFig7Scalability regenerates Figure 7 (self-relative speedups).
func BenchmarkFig7Scalability(b *testing.B) {
	s := benchSuite()
	var rc, vl float64
	for i := 0; i < b.N; i++ {
		pts := s.Scalability()
		if i == 0 {
			b.Log("\n" + s.Fig7Scalability(pts).String())
		}
		for _, p := range pts {
			if p.Design == "MegaBOOM-4C" && p.K == 24 {
				switch p.Simulator {
				case experiments.SimRepCut:
					rc = p.Speedup
				case experiments.SimVerilator:
					vl = p.Speedup
				}
			}
		}
	}
	b.ReportMetric(rc, "repcut_x@24")
	b.ReportMetric(vl, "verilator_x@24")
}

// BenchmarkFig8PeakSpeedup regenerates Figure 8 (peak speedup vs size).
func BenchmarkFig8PeakSpeedup(b *testing.B) {
	s := benchSuite()
	var mega float64
	for i := 0; i < b.N; i++ {
		pts := s.Scalability()
		peak, tbl := s.Fig8Peak(pts)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		mega = peak["MegaBOOM-4C"][experiments.SimRepCut]
	}
	b.ReportMetric(mega, "mega4c_peak_x")
}

// BenchmarkFig9Throughput regenerates Figure 9 (absolute KHz).
func BenchmarkFig9Throughput(b *testing.B) {
	s := benchSuite()
	var best float64
	for i := 0; i < b.N; i++ {
		pts := s.Scalability()
		if i == 0 {
			b.Log("\n" + s.Fig9Throughput(pts).String())
		}
		best = 0
		for _, p := range pts {
			if p.Design == "MegaBOOM-4C" && p.Simulator == experiments.SimRepCut && p.KHz > best {
				best = p.KHz
			}
		}
	}
	b.ReportMetric(best, "mega4c_best_kHz")
}

// BenchmarkFig10Compiler regenerates Figure 10 (backend optimization
// impact — the clang 10 vs clang 14 analog).
func BenchmarkFig10Compiler(b *testing.B) {
	s := benchSuite()
	var o0, o2 float64
	for i := 0; i < b.N; i++ {
		pts, tbl := s.Fig10Compiler()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		for _, p := range pts {
			if p.Design == "MegaBOOM-4C" && p.Simulator == experiments.SimRepCut && p.K == 24 {
				if p.OptLevel == 0 {
					o0 = p.KHz
				} else {
					o2 = p.KHz
				}
			}
		}
	}
	if o0 > 0 {
		b.ReportMetric(o2/o0, "O2_over_O0")
	}
}

// BenchmarkFig11Numa regenerates Figure 11 (socket placement).
func BenchmarkFig11Numa(b *testing.B) {
	s := benchSuite()
	var same, inter float64
	for i := 0; i < b.N; i++ {
		pts, tbl := s.Fig11Numa()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		for _, p := range pts {
			if p.Design == "MegaBOOM-4C" && p.K == 24 {
				if p.Placement == hostmodel.Interleaved {
					inter = p.Speedup
				} else {
					same = p.Speedup
				}
			}
		}
	}
	b.ReportMetric(same, "same_socket_x@24")
	b.ReportMetric(inter, "interleaved_x@24")
}

// BenchmarkFig12PhaseProfile regenerates Figure 12 (per-thread phases).
func BenchmarkFig12PhaseProfile(b *testing.B) {
	s := benchSuite()
	var megaFrac float64
	for i := 0; i < b.N; i++ {
		rows, tbl := s.Fig12PhaseProfile()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		var f float64
		var n int
		for _, r := range rows {
			if r.Design == "MegaBOOM-4C" {
				f += r.EvalNs / (r.EvalNs + r.WaitNs)
				n++
			}
		}
		megaFrac = f / float64(n)
	}
	b.ReportMetric(100*megaFrac, "mega4c_eval%")
}

// BenchmarkFig13Efficiency regenerates Figure 13 (efficiency vs imbalance).
func BenchmarkFig13Efficiency(b *testing.B) {
	s := benchSuite()
	var n int
	for i := 0; i < b.N; i++ {
		pts := s.Scalability()
		fpts, tbl := s.Fig13Efficiency(pts)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		n = len(fpts)
	}
	b.ReportMetric(float64(n), "points")
}

// BenchmarkFig14Imbalance regenerates Figure 14 (imbalance factors).
func BenchmarkFig14Imbalance(b *testing.B) {
	s := benchSuite()
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, tbl := s.Fig14Imbalance()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
		worst = 0
		for _, p := range pts {
			if p.Incl > worst {
				worst = p.Incl
			}
		}
	}
	b.ReportMetric(worst, "worst_imbalance")
}

// BenchmarkTable3Counters regenerates Table 3 (modeled perf counters).
func BenchmarkTable3Counters(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tbl := s.Table3()
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
	cfg := designs.Config{Kind: designs.MegaBoom, Cores: 4, Scale: 1}
	p1 := s.RepCutPerf(cfg, 1, false, 2, hostmodel.SameSocket)
	p24 := s.RepCutPerf(cfg, 24, false, 2, hostmodel.SameSocket)
	b.ReportMetric(p1.Counters.IPC, "IPC@1")
	b.ReportMetric(p24.Counters.IPC, "IPC@24")
}

// --- Real-engine microbenchmarks (measured on this host, not modeled) ---

// BenchmarkSerialEngine measures actual serial simulation throughput.
func BenchmarkSerialEngine(b *testing.B) {
	s := benchSuite()
	cfg := designs.Config{Kind: designs.SmallBoom, Cores: 1, Scale: 1}
	e := sim.NewEngine(s.SerialProgram(cfg, 2))
	b.ResetTimer()
	e.Run(b.N)
	b.ReportMetric(float64(e.InstrsRetired())/float64(b.N), "instrs/cycle")
}

// BenchmarkParallelEngine measures the real two-phase parallel engine
// (barriers and all) on this host.
func BenchmarkParallelEngine(b *testing.B) {
	s := benchSuite()
	cfg := designs.Config{Kind: designs.SmallBoom, Cores: 1, Scale: 1}
	e := sim.NewEngine(s.Program(cfg, 4, false, 2))
	b.ResetTimer()
	e.Run(b.N)
}

// BenchmarkVerilatorEngine measures the baseline task engine on this host.
func BenchmarkVerilatorEngine(b *testing.B) {
	s := benchSuite()
	cfg := designs.Config{Kind: designs.SmallBoom, Cores: 1, Scale: 1}
	v := s.Verilator(cfg, 4, false)
	v.Engine.Reset()
	b.ResetTimer()
	v.Engine.Run(b.N)
}

// BenchmarkPartitionMegaBoom measures the full replication-aided
// partitioning pipeline (cones, clustering, hypergraph, realization).
func BenchmarkPartitionMegaBoom(b *testing.B) {
	s := benchSuite()
	g := s.Graph(designs.Config{Kind: designs.MegaBoom, Cores: 4, Scale: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh seeds defeat memoization: this measures the partitioner.
		r, err := partitionForBench(g, 16, int64(i+100))
		if err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}

// BenchmarkCompileMegaBoom measures serial compilation of the largest
// design.
func BenchmarkCompileMegaBoom(b *testing.B) {
	s := benchSuite()
	g := s.Graph(designs.Config{Kind: designs.MegaBoom, Cores: 4, Scale: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Compile(g, sim.SerialSpec(g), sim.Config{OptLevel: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionCompile measures the end-to-end partition+compile
// pipeline serially (workers=1) and with the worker pool (workers=0, all
// cores). Both arms produce bit-identical programs; the parallel arm only
// helps on multi-core hosts.
func BenchmarkPartitionCompile(b *testing.B) {
	s := benchSuite()
	g := s.Graph(designs.Config{Kind: designs.MegaBoom, Cores: 4, Scale: 1})
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh seeds defeat suite memoization.
				r, err := partitionForBenchWorkers(g, 16, int64(i+500), bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				specs := make([]sim.PartSpec, len(r.Parts))
				for p := range r.Parts {
					specs[p] = sim.PartSpec{Vertices: r.Parts[p].Vertices, Sinks: r.Parts[p].Sinks}
				}
				if _, err := sim.Compile(g, specs, sim.Config{OptLevel: 2, Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
