GO ?= go

.PHONY: build test lint check bench bench-interp bench-batch bench-codegen bench-repart bench-cluster cluster results serve loadgen loadgen-hot fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Style gate: gofmt must produce no diffs, vet must be clean. staticcheck
# and govulncheck additionally run when installed (CI installs them; get
# them locally with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest).
lint:
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping"; fi

# Full gate: lint plus the whole suite under the race detector. The parallel
# partition+compile pipeline must stay race-clean and deterministic.
check: lint
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate the linked-fast-path measurement: real interp-vs-linked
# cycles/sec per design, written to results/interp_fastpath.{txt,csv} and
# machine-readable results/BENCH_interp.json.
bench-interp:
	$(GO) run ./cmd/benchall -interp-only -out results

# Regenerate the lane-batching measurement: one BatchEngine with N lanes
# vs N independent engines, written to results/batch_sweep.{txt,csv} and
# machine-readable results/BENCH_batch.json.
bench-batch:
	$(GO) run ./cmd/benchall -batch-only -out results

# Regenerate the native-codegen measurement: linked interpreter vs the
# same program compiled to a plugin kernel, written to
# results/codegen.{txt,csv} and machine-readable results/BENCH_codegen.json.
# Skips cleanly on platforms without Go plugin support.
bench-codegen:
	$(GO) run ./cmd/benchall -codegen-only -out results

# Regenerate the repartitioning measurement: unrefined recursive bisection
# vs k-way refined + dereplicated partitions (replication factor, cut
# cost, real cycles/sec), written to results/repart.{txt,csv} and
# machine-readable results/BENCH_repart.json. The sweep fails if
# refinement increases the replication factor or the two programs' state
# hashes diverge.
bench-repart:
	$(GO) run ./cmd/benchall -repart-only -out results

# Multi-node fleet suite under the race detector: consistent-hash compile
# routing, peer artifact fetch, checkpoint/restore, drain migration, and
# the fault-injection matrix (peer death, stalls, corrupted artifacts).
cluster:
	$(GO) test -race -count=1 ./internal/cluster/...

# Regenerate the fleet measurement: a 3-node in-process cluster driven
# through every node at once, written to results/cluster.{txt,csv} and
# machine-readable results/BENCH_cluster.json. Fails if any design
# compiles more than once fleet-wide, the peer fetch hit rate drops under
# 2/3, or a drain loses a session.
bench-cluster:
	$(GO) run ./cmd/benchall -cluster-only -out results

results:
	$(GO) run ./cmd/benchall -out results

# Differential fuzzing: each native fuzz target for FUZZTIME, then a
# deterministic 200-seed cross-engine sweep via the repcutfuzz CLI.
# Crashers are minimized and written to internal/difftest/testdata/crashers/
# where TestDifferentialCorpus replays them forever after.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDifferentialSim -fuzztime=$(FUZZTIME) ./internal/difftest/
	$(GO) test -run=NONE -fuzz=FuzzFirrtlRoundTrip -fuzztime=$(FUZZTIME) ./internal/firrtl/
	$(GO) test -run=NONE -fuzz=FuzzBitvecOps -fuzztime=$(FUZZTIME) ./internal/bitvec/
	$(GO) run ./cmd/repcutfuzz -seeds 200

# Boot the simulation service on the default local address.
serve:
	$(GO) run ./cmd/repcutd -addr 127.0.0.1:8372

# Drive a self-hosted repcutd with the deterministic load generator and
# record throughput (sessions/s, cycles/s, cache hit rate) into results/.
loadgen:
	@mkdir -p results
	$(GO) run ./cmd/repcutd -loadgen -addr "" -duration 2s \
		-min-hit-rate 0.5

# Hot-design scenario: every client hammers one design; self-hosts twice
# (batching on, then off) and records the aggregate-throughput comparison
# plus the lane-occupancy gate into results/.
loadgen-hot:
	@mkdir -p results
	$(GO) run ./cmd/repcutd -loadgen -hot -duration 8s -clients 16 \
		-designs RocketChip-1C -scale 0.5 -threads 2 \
		-cycles-per-session 40000 -min-occupancy 0.3 \
		-out results/service_throughput.txt
