GO ?= go

.PHONY: build test lint check bench results

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Style gate: gofmt must produce no diffs, vet must be clean.
lint:
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

# Full gate: lint plus the whole suite under the race detector. The parallel
# partition+compile pipeline must stay race-clean and deterministic.
check: lint
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

results:
	$(GO) run ./cmd/benchall -out results
