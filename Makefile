GO ?= go

.PHONY: build test check bench results

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: vet plus the whole suite under the race detector. The parallel
# partition+compile pipeline must stay race-clean and deterministic.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

results:
	$(GO) run ./cmd/benchall -out results
