package repcut

import (
	"repro/internal/cgraph"
	"repro/internal/core"
	"repro/internal/costmodel"
)

// partitionForBench runs the partitioner with a fresh seed (no memoization).
func partitionForBench(g *cgraph.Graph, k int, seed int64) (*core.Result, error) {
	return core.Partition(g, core.Options{K: k, Seed: seed, Model: costmodel.Default()})
}

// partitionForBenchWorkers is partitionForBench with an explicit pipeline
// worker count.
func partitionForBenchWorkers(g *cgraph.Graph, k int, seed int64, workers int) (*core.Result, error) {
	return core.Partition(g, core.Options{K: k, Seed: seed, Model: costmodel.Default(), Workers: workers})
}
